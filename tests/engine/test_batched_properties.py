"""Property-based parity: batched lanes ≡ serial runs on ANY input.

Hypothesis drives the shapes, seeds and knobs; the invariant is always
the same — every lane of a batched run must be **bit-for-bit** the
serial computation of that lane alone.  The generated space includes
the corners the example-based wall can only sample: unclamped
degenerate θ lanes (0/1 rates routing through the legacy likelihood
path), all-dependent claim matrices (the independent partition is
empty, so Equations 10–11 hit their fallback), empty-partition
posteriors, and mixed-convergence batches whose lanes retire on
different passes.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SensingProblem, SourceParameters
from repro.core.em_ext import EMConfig, EMExtEstimator
from repro.engine import EMDriver
from repro.engine.backends import DenseBackend
from repro.engine.batched import (
    BatchedDenseBackend,
    BatchedSourceParameters,
    run_batched_lanes,
)

SETTINGS = settings(max_examples=20, deadline=None)

dims = st.tuples(st.integers(2, 7), st.integers(2, 9))
seeds = st.integers(0, 2**32 - 1)
lane_counts = st.integers(2, 5)


def _problem(n_sources, n_assertions, seed, *, all_dependent=False):
    """A random valid sensing problem (dependency implies a claim)."""
    rng = np.random.default_rng(seed)
    sc = (rng.random((n_sources, n_assertions)) < 0.6).astype(np.int8)
    if all_dependent:
        dep = sc.copy()  # every claim is dependent: no independent cells
    else:
        dep = ((rng.random(sc.shape) < 0.3) & (sc == 1)).astype(np.int8)
    return SensingProblem(claims=sc, dependency=dep)


def _inits(n_sources, seed, count, *, degenerate=False):
    rng = np.random.default_rng(seed)
    params = []
    for _ in range(count):
        draw = SourceParameters.random(n_sources, rng).clamp(1e-4)
        if degenerate:
            # Pin one random rate of one random source to an exact 0/1:
            # its log tables go infinite and the lane must route through
            # the legacy likelihood path, bit-for-bit with serial.
            rates = np.stack([draw.a, draw.b, draw.f, draw.g], axis=1)
            rates[rng.integers(n_sources), rng.integers(4)] = float(
                rng.integers(2)
            )
            draw = SourceParameters(
                a=rates[:, 0], b=rates[:, 1], f=rates[:, 2], g=rates[:, 3],
                z=draw.z,
            )
        params.append(draw)
    return params


def _assert_lanes_match_serial(problem, inits, *, smoothing=0.0, tolerance=1e-5):
    backend = DenseBackend(problem, smoothing=smoothing)
    driver = EMDriver(max_iterations=25, tolerance=tolerance)
    with np.errstate(invalid="ignore", divide="ignore"):
        lanes = run_batched_lanes(
            backend.batched_lanes(len(inits)),
            inits,
            max_iterations=25,
            tolerance=tolerance,
        )
        for lane, init in zip(lanes, inits):
            serial = driver.run(backend, init)
            assert lane.error is None
            batched = lane.outcome
            assert np.array_equal(
                serial.posterior, batched.posterior, equal_nan=True
            )
            for name in ("a", "b", "f", "g"):
                assert np.array_equal(
                    getattr(serial.parameters, name),
                    getattr(batched.parameters, name),
                    equal_nan=True,
                )
            assert serial.parameters.z == batched.parameters.z
            assert serial.converged == batched.converged
            assert serial.diverged == batched.diverged
            assert serial.n_iterations == batched.n_iterations
            assert len(serial.trace.log_likelihoods) == len(
                batched.trace.log_likelihoods
            )
            for left, right in zip(
                serial.trace.log_likelihoods, batched.trace.log_likelihoods
            ):
                assert left == right or (np.isnan(left) and np.isnan(right))


class TestLaneParityProperties:
    @SETTINGS
    @given(shape=dims, seed=seeds, n_lanes=lane_counts)
    def test_random_lanes_match_serial(self, shape, seed, n_lanes):
        problem = _problem(*shape, seed)
        inits = _inits(shape[0], seed + 1, n_lanes)
        _assert_lanes_match_serial(problem, inits)

    @SETTINGS
    @given(
        shape=dims,
        seed=seeds,
        n_lanes=lane_counts,
        smoothing=st.floats(0.1, 2.0),
    )
    def test_smoothed_lanes_match_serial(self, shape, seed, n_lanes, smoothing):
        problem = _problem(*shape, seed)
        inits = _inits(shape[0], seed + 1, n_lanes)
        _assert_lanes_match_serial(problem, inits, smoothing=smoothing)

    @SETTINGS
    @given(shape=dims, seed=seeds, n_lanes=lane_counts)
    def test_degenerate_theta_lanes_match_serial(self, shape, seed, n_lanes):
        problem = _problem(*shape, seed)
        inits = _inits(shape[0], seed + 1, n_lanes, degenerate=True)
        _assert_lanes_match_serial(problem, inits)

    @SETTINGS
    @given(shape=dims, seed=seeds, n_lanes=lane_counts)
    def test_all_dependent_lanes_match_serial(self, shape, seed, n_lanes):
        problem = _problem(*shape, seed, all_dependent=True)
        inits = _inits(shape[0], seed + 1, n_lanes)
        _assert_lanes_match_serial(problem, inits)


class TestEstimatorParityProperties:
    @settings(max_examples=10, deadline=None)
    @given(shape=dims, seed=seeds, n_restarts=st.integers(2, 4))
    def test_fit_matches_serial_fit(self, shape, seed, n_restarts):
        problem = _problem(*shape, seed)
        config = dict(
            n_restarts=n_restarts, init_strategy="random", max_iterations=25
        )
        serial = EMExtEstimator(
            EMConfig(restart_mode="serial", **config), seed=seed
        ).fit(problem)
        batched = EMExtEstimator(
            EMConfig(restart_mode="batched", **config), seed=seed
        ).fit(problem)
        assert np.array_equal(serial.scores, batched.scores)
        assert serial.log_likelihood == batched.log_likelihood
        assert serial.health.selected == batched.health.selected
        assert [
            (r.index, r.status, r.n_iterations)
            for r in serial.health.restarts
        ] == [
            (r.index, r.status, r.n_iterations)
            for r in batched.health.restarts
        ]


class TestBatchedContainerProperties:
    @SETTINGS
    @given(seed=seeds, n=st.integers(1, 8), n_lanes=lane_counts)
    def test_stack_select_lane_round_trip(self, seed, n, n_lanes):
        inits = _inits(n, seed, n_lanes)
        stacked = BatchedSourceParameters.stack(inits)
        keep = np.arange(n_lanes)[:: max(1, n_lanes - 1)]
        selected = stacked.select(keep)
        for position, lane_index in enumerate(keep):
            lane = selected.lane(position)
            original = inits[int(lane_index)]
            for name in ("a", "b", "f", "g"):
                assert np.array_equal(getattr(lane, name), getattr(original, name))
            assert lane.z == original.z

    @SETTINGS
    @given(shape=dims, seed=seeds, n_lanes=lane_counts)
    def test_compact_preserves_remaining_lanes(self, shape, seed, n_lanes):
        problems = [
            _problem(*shape, seed + index) for index in range(n_lanes)
        ]
        batched = BatchedDenseBackend.from_backends(
            [DenseBackend(p) for p in problems]
        )
        keep = np.arange(n_lanes)[:: max(1, n_lanes - 1)]
        compacted = batched.compact(keep)
        assert compacted.n_lanes == len(keep)
        params = _inits(shape[0], seed + 99, len(keep))
        stacked = BatchedSourceParameters.stack(params)
        posterior, lls = compacted.e_step(stacked)
        for position, lane_index in enumerate(keep):
            scalar = DenseBackend(problems[int(lane_index)])
            expected_posterior, expected_ll = scalar.e_step(params[position])
            assert np.array_equal(posterior[position], expected_posterior)
            assert lls[position] == expected_ll
