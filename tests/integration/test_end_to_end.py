"""Integration tests: full flows across packages."""

import numpy as np

from repro import (
    EMExtEstimator,
    EMIndependent,
    EMSocial,
    GeneratorConfig,
    exact_bound,
    generate_dataset,
    gibbs_bound,
)
from repro.baselines import EMPIRICAL_ALGORITHMS, make_fact_finder
from repro.bounds import GibbsConfig
from repro.core import EMConfig
from repro.datasets import simulate_dataset
from repro.pipeline import ApolloPipeline, SimulatedGrader, grade_top_k
from repro.synthetic import empirical_parameters


class TestSyntheticPipeline:
    """Generate → estimate → score, with bound as the ceiling."""

    def test_estimators_bounded_by_optimal(self):
        accuracies = {"em-ext": [], "em": [], "em-social": []}
        ceilings = []
        for seed in range(4):
            dataset = generate_dataset(GeneratorConfig(), seed=seed)
            problem = dataset.problem
            params = empirical_parameters(problem).clamp(1e-4)
            bound = exact_bound(problem.dependency.values, params)
            ceilings.append(1 - bound.total)
            blind = problem.without_truth()
            for estimator in (
                EMExtEstimator(seed=0), EMIndependent(seed=0), EMSocial(seed=0),
            ):
                result = estimator.fit(blind)
                accuracies[estimator.algorithm_name].append(
                    float((result.decisions == problem.truth).mean())
                )
        ceiling = float(np.mean(ceilings))
        for name, values in accuracies.items():
            assert float(np.mean(values)) <= ceiling + 0.02, name

    def test_em_ext_beats_em_with_strong_dependencies(self):
        """With few trees and uninformative dependent claims, modelling
        dependency must beat ignoring it."""
        config = GeneratorConfig.estimator_defaults(
            n_trees=(5, 5)
        ).with_dependent_odds(1.0)
        ext_accuracy = []
        em_accuracy = []
        for seed in range(5):
            dataset = generate_dataset(config, seed=seed)
            blind = dataset.problem.without_truth()
            ext = EMExtEstimator(seed=0).fit(blind)
            em = EMIndependent(seed=0).fit(blind)
            ext_accuracy.append(float((ext.decisions == dataset.problem.truth).mean()))
            em_accuracy.append(float((em.decisions == dataset.problem.truth).mean()))
        assert np.mean(ext_accuracy) > np.mean(em_accuracy)

    def test_gibbs_matches_exact_on_problem(self):
        dataset = generate_dataset(GeneratorConfig(), seed=11)
        params = empirical_parameters(dataset.problem).clamp(1e-4)
        dependency = dataset.problem.dependency.values
        exact = exact_bound(dependency, params)
        approx = gibbs_bound(
            dependency, params,
            config=GibbsConfig(min_sweeps=1500, max_sweeps=4000), seed=0,
        )
        assert abs(exact.total - approx.total) < 0.02


class TestEmpiricalPipeline:
    """Simulate platform → Apollo → grade (the Section V-C flow)."""

    def test_text_level_flow(self):
        dataset = simulate_dataset("superbug", scale=0.05, seed=13)
        tweets = dataset.evaluation_tweets()
        report = ApolloPipeline("em-ext", seed=0).run(tweets)
        assert report.built.problem.n_assertions > 10
        assert report.built.problem.dependent_claim_fraction() > 0.0
        top = report.top(10)
        assert len(top) == 10

    def test_matrix_level_grading_flow(self):
        dataset = simulate_dataset("ukraine", scale=0.15, seed=3)
        evaluation = dataset.evaluation_slice()
        blind = evaluation.problem.without_truth()
        results = {}
        for name in EMPIRICAL_ALGORITHMS:
            kwargs = {"seed": 0} if name in ("em", "em-social", "em-ext") else {}
            results[name] = make_fact_finder(name, **kwargs).fit(blind)
        grader = SimulatedGrader(evaluation.labels, seed=0)
        reports = grade_top_k(results, grader, k=50, seed=0)
        assert set(reports) == set(EMPIRICAL_ALGORITHMS)
        for report in reports.values():
            assert 0.0 <= report.true_ratio <= 1.0
            assert report.n_graded == 50

    def test_em_family_beats_voting_on_rumor_heavy_data(self):
        """Cascaded rumours fool raw counting more than the EM family."""
        ratios = {"voting": [], "em-ext": []}
        for seed in range(3):
            dataset = simulate_dataset("kirkuk", scale=0.25, seed=seed)
            evaluation = dataset.evaluation_slice()
            blind = evaluation.problem.without_truth()
            results = {
                "voting": make_fact_finder("voting").fit(blind),
                "em-ext": make_fact_finder(
                    "em-ext", seed=0, config=EMConfig(smoothing=1.0)
                ).fit(blind),
            }
            grader = SimulatedGrader(evaluation.labels, seed=seed)
            reports = grade_top_k(results, grader, k=100, seed=seed)
            for name in ratios:
                ratios[name].append(reports[name].true_ratio)
        assert np.mean(ratios["em-ext"]) > np.mean(ratios["voting"])
