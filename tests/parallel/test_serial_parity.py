"""The serial-parity wall: parallel execution must be bit-for-bit serial.

Every parallel entry point — the simulation harness, the sharded Gibbs
bound, the EM driver's restart fan-out — promises results that are
*identical* (not just statistically equivalent) for any worker count.
These tests hold the line with exact ``==`` comparisons on floats.

``REPRO_TEST_N_JOBS`` overrides the non-trivial worker count (CI uses 2
to match its runners; the default is 4).
"""

import multiprocessing
import os

import numpy as np
import pytest

from repro.baselines import make_fact_finder
from repro.bounds import GibbsConfig, gibbs_bound
from repro.engine import (
    DenseBackend,
    EMDriver,
    TelemetryRecorder,
    support_initialisation,
)
from repro.eval import run_simulation
from repro.parallel import ParallelConfig
from repro.resilience import FailurePolicy, InjectedFault, temporary_algorithm
from repro.synthetic import GeneratorConfig, empirical_parameters, generate_dataset

N_JOBS = int(os.environ.get("REPRO_TEST_N_JOBS", "4"))

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="workers must inherit the parent's algorithm registry (fork only)",
)

CONFIG = GeneratorConfig(n_sources=8, n_assertions=24, n_trees=(3, 4))


def _series_dict(result):
    """All metric series of a SimulationResult, hashable for exact ==."""
    return {
        name: (
            tuple(series.accuracy),
            tuple(series.false_positive_rate),
            tuple(series.false_negative_rate),
        )
        for name, series in result.series.items()
    }


def _ledger(result):
    return [
        (f.trial, f.algorithm, f.attempt, f.error_type, f.action)
        for f in result.failures
    ]


def _event_keys(recorder):
    """Telemetry events minus wall-clock durations (which may not match)."""
    return [(e.iteration, e.delta, e.log_likelihood) for e in recorder.events]


class TestHarnessParity:
    def test_run_simulation_identical_for_any_worker_count(self):
        kwargs = dict(
            algorithms=("em", "em-ext"),
            n_trials=4,
            seed=123,
            include_optimal=True,
        )
        recorders = [TelemetryRecorder() for _ in range(3)]
        serial = run_simulation(CONFIG, telemetry=recorders[0], **kwargs)
        pooled = run_simulation(
            CONFIG,
            telemetry=recorders[1],
            parallel=ParallelConfig(n_jobs=N_JOBS),
            **kwargs,
        )
        in_process = run_simulation(
            CONFIG,
            telemetry=recorders[2],
            parallel=ParallelConfig.serial(),
            **kwargs,
        )
        assert _series_dict(serial) == _series_dict(pooled) == _series_dict(in_process)
        assert serial.failures == pooled.failures == []
        # Worker telemetry is replayed into the parent's recorder in
        # trial order — same events as a live serial run.
        assert _event_keys(recorders[0]) == _event_keys(recorders[1])
        assert _event_keys(recorders[0]) == _event_keys(recorders[2])
        assert len(recorders[0]) > 0

    def test_chunked_dispatch_is_still_identical(self):
        kwargs = dict(
            algorithms=("em",), n_trials=5, seed=31, include_optimal=False
        )
        serial = run_simulation(CONFIG, **kwargs)
        chunked = run_simulation(
            CONFIG, parallel=ParallelConfig(n_jobs=2, chunk_size=2), **kwargs
        )
        assert _series_dict(serial) == _series_dict(chunked)


class TestGibbsParity:
    def test_sharded_bound_invariant_to_worker_count(self):
        dataset = generate_dataset(CONFIG, seed=21)
        params = empirical_parameters(dataset.problem).clamp(1e-4)
        dependency = dataset.problem.dependency.values
        config = GibbsConfig(
            burn_in=20, min_sweeps=100, max_sweeps=400, check_interval=50
        )
        results = [
            gibbs_bound(dependency, params, config=config, seed=9, parallel=parallel)
            for parallel in (
                ParallelConfig(n_jobs=1),
                ParallelConfig(n_jobs=N_JOBS),
                ParallelConfig.serial(),
            )
        ]
        reference = results[0]
        for other in results[1:]:
            assert other.total == reference.total
            assert other.false_positive == reference.false_positive
            assert other.false_negative == reference.false_negative
            assert other.n_samples == reference.n_samples
        assert 0.0 <= reference.total <= 0.5


class TestDriverParity:
    def test_restart_fanout_bit_for_bit(self):
        dataset = generate_dataset(CONFIG, seed=5)
        backend = DenseBackend(dataset.problem.without_truth())

        def initialiser(index, rng):
            if index == 0:
                return support_initialisation(backend)
            return backend.random_params(rng)

        recorders = [TelemetryRecorder() for _ in range(3)]
        outcomes = []
        for recorder, parallel in zip(
            recorders,
            (None, ParallelConfig(n_jobs=N_JOBS), ParallelConfig.serial()),
        ):
            driver = EMDriver(
                max_iterations=80,
                tolerance=1e-8,
                n_restarts=3,
                callbacks=(recorder,),
                parallel=parallel,
            )
            outcomes.append(driver.fit(backend, initialiser, seed=11))
        serial = outcomes[0]
        for other in outcomes[1:]:
            np.testing.assert_array_equal(serial.posterior, other.posterior)
            assert serial.log_likelihood == other.log_likelihood
            assert list(serial.trace.log_likelihoods) == list(
                other.trace.log_likelihoods
            )
            assert serial.health.selected == other.health.selected
            assert [
                (r.index, r.status, r.n_iterations, r.log_likelihood)
                for r in serial.health.restarts
            ] == [
                (r.index, r.status, r.n_iterations, r.log_likelihood)
                for r in other.health.restarts
            ]
        assert _event_keys(recorders[0]) == _event_keys(recorders[1])
        assert _event_keys(recorders[0]) == _event_keys(recorders[2])

    def test_batched_lanes_split_into_worker_packs_bit_for_bit(self):
        # restart_mode="batched" + ParallelConfig routes through
        # _batched_parallel_candidates: lanes are split into per-worker
        # packs, and the composition must still be bitwise serial.
        dataset = generate_dataset(CONFIG, seed=17)
        backend = DenseBackend(dataset.problem.without_truth())

        def initialiser(index, rng):
            if index == 0:
                return support_initialisation(backend)
            return backend.random_params(rng)

        outcomes = []
        for restart_mode, parallel in (
            ("serial", None),
            ("batched", ParallelConfig(n_jobs=N_JOBS)),
            ("batched", ParallelConfig.serial()),
        ):
            driver = EMDriver(
                max_iterations=80,
                tolerance=1e-8,
                n_restarts=4,
                restart_mode=restart_mode,
                parallel=parallel,
            )
            outcomes.append(driver.fit(backend, initialiser, seed=23))
        serial = outcomes[0]
        for other in outcomes[1:]:
            np.testing.assert_array_equal(serial.posterior, other.posterior)
            assert serial.log_likelihood == other.log_likelihood
            for name in ("a", "b", "f", "g"):
                np.testing.assert_array_equal(
                    getattr(serial.parameters, name),
                    getattr(other.parameters, name),
                )
            assert serial.parameters.z == other.parameters.z
            assert list(serial.trace.log_likelihoods) == list(
                other.trace.log_likelihoods
            )
            assert serial.health.selected == other.health.selected
            assert [
                (r.index, r.status, r.n_iterations, r.log_likelihood)
                for r in serial.health.restarts
            ] == [
                (r.index, r.status, r.n_iterations, r.log_likelihood)
                for r in other.health.restarts
            ]


class _FlakySeedFinder:
    """Registry-compatible finder that dies deterministically per seed.

    Unlike :func:`repro.resilience.faults.chaos_finder` (whose global
    fit counter is per-process, so fork workers would each count their
    own fits), failure here is a pure function of the trial seed — the
    same trials fail no matter which process runs them.
    """

    algorithm_name = "flaky-seed"
    accepts_trial_seed = True

    def __init__(self, seed=None, **_kwargs):
        self._seed = seed

    def fit(self, problem):
        if self._seed % 3 == 0:
            raise InjectedFault(f"flaky on seed {self._seed}")
        return make_fact_finder("em", seed=self._seed).fit(problem)


class _SeedBomb:
    """Finder that dies on chosen seeds while armed; delegates when not.

    ``armed`` is a class attribute so a test can let one sweep crash,
    disarm, and resume — fork workers inherit the flag's current value.
    """

    algorithm_name = "seed-bomb"
    accepts_trial_seed = True
    armed = True

    def __init__(self, seed=None, **_kwargs):
        self._seed = seed

    def fit(self, problem):
        if type(self).armed and self._seed % 5 == 0:
            raise InjectedFault(f"bomb armed on seed {self._seed}")
        return make_fact_finder("em", seed=self._seed).fit(problem)


@needs_fork
class TestPolicyParity:
    def test_retry_ledger_and_series_identical(self):
        # Seed 8: two trials fail on their first attempt; one of them
        # also fails its retry and is skipped — the ledger exercises
        # both actions (probed offline; failure is a pure function of
        # the deterministic trial seeds).
        kwargs = dict(
            algorithms=("em", _FlakySeedFinder.algorithm_name),
            n_trials=6,
            seed=8,
            include_optimal=False,
            failure_policy=FailurePolicy.retry(max_attempts=2),
        )
        with temporary_algorithm(_FlakySeedFinder):
            serial = run_simulation(CONFIG, **kwargs)
            pooled = run_simulation(
                CONFIG,
                parallel=ParallelConfig(n_jobs=N_JOBS, start_method="fork"),
                **kwargs,
            )
        assert _series_dict(serial) == _series_dict(pooled)
        assert _ledger(serial) == _ledger(pooled)
        assert {f.action for f in serial.failures} == {"retried", "skipped"}

    def test_skip_ledger_and_series_identical(self):
        kwargs = dict(
            algorithms=("em", _FlakySeedFinder.algorithm_name),
            n_trials=6,
            seed=8,
            include_optimal=False,
            failure_policy=FailurePolicy.skip(),
        )
        with temporary_algorithm(_FlakySeedFinder):
            serial = run_simulation(CONFIG, **kwargs)
            pooled = run_simulation(
                CONFIG,
                parallel=ParallelConfig(n_jobs=N_JOBS, start_method="fork"),
                **kwargs,
            )
        assert _series_dict(serial) == _series_dict(pooled)
        assert _ledger(serial) == _ledger(pooled)
        assert len(serial.failures) > 0


@needs_fork
class TestCheckpointResumeParity:
    def test_interrupted_parallel_sweep_resumes_bit_for_bit(self, tmp_path):
        # Seed 7: the bomb fires on trial 3, so the crashed sweep leaves
        # a checkpoint holding trials 0-2 (probed offline).
        path = str(tmp_path / "sweep.ckpt")
        kwargs = dict(
            algorithms=("em", _SeedBomb.algorithm_name),
            n_trials=6,
            seed=7,
            include_optimal=False,
        )
        parallel = ParallelConfig(n_jobs=N_JOBS, start_method="fork")
        try:
            with temporary_algorithm(_SeedBomb):
                _SeedBomb.armed = True
                with pytest.raises(InjectedFault):
                    run_simulation(
                        CONFIG, checkpoint_path=path, parallel=parallel, **kwargs
                    )
                assert os.path.exists(path)
                # Disarm and resume: the remaining trials run in
                # workers, and the merged result must equal an
                # uninterrupted run.
                _SeedBomb.armed = False
                resumed = run_simulation(
                    CONFIG, checkpoint_path=path, parallel=parallel, **kwargs
                )
                uninterrupted = run_simulation(CONFIG, **kwargs)
        finally:
            _SeedBomb.armed = True
        assert _series_dict(resumed) == _series_dict(uninterrupted)
        assert resumed.failures == uninterrupted.failures == []


def _square(x):
    return x * x


class TestSupervisedExecutorParity:
    """The heartbeat-supervised path must change *when*, never *what*."""

    def test_supervised_imap_matches_plain_results(self):
        from repro.parallel import parallel_map

        tasks = list(range(17))
        plain = parallel_map(_square, tasks, config=ParallelConfig(n_jobs=N_JOBS))
        supervised = parallel_map(
            _square,
            tasks,
            config=ParallelConfig(
                n_jobs=N_JOBS, timeout_seconds=120.0, max_resubmits=2
            ),
        )
        assert supervised == plain == [x * x for x in tasks]

    def test_supervised_harness_run_is_bit_identical_to_serial(self):
        kwargs = dict(
            algorithms=("em", "em-ext"),
            n_trials=4,
            seed=77,
            include_optimal=True,
        )
        serial = run_simulation(CONFIG, **kwargs)
        supervised = run_simulation(
            CONFIG,
            parallel=ParallelConfig(
                n_jobs=N_JOBS, timeout_seconds=120.0, max_resubmits=2
            ),
            **kwargs,
        )
        assert _series_dict(serial) == _series_dict(supervised)
        assert serial.failures == supervised.failures == []
