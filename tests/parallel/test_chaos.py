"""Fault containment under parallelism: worker failures must never hang.

The failure mode these tests guard against: a worker process raises (or
wedges) and the parent blocks forever on the pool.  Worker exceptions
must surface — as :class:`~repro.resilience.policy.TrialFailure` ledger
entries under ``skip``/``retry``, as the original exception under
``fail_fast`` — and a wedged worker must be killed by the timeout
guard, never waited on.
"""

import multiprocessing
import os
import time

import pytest

from repro.baselines import make_fact_finder
from repro.core import FactFindingResult
from repro.engine import DenseBackend, EMDriver, support_initialisation
from repro.eval import run_simulation
from repro.parallel import ParallelConfig, WorkerTimeoutError, parallel_imap
from repro.resilience import (
    FailurePolicy,
    FlakyBackend,
    InjectedFault,
    temporary_algorithm,
)
from repro.synthetic import GeneratorConfig

pytestmark = pytest.mark.chaos

N_JOBS = int(os.environ.get("REPRO_TEST_N_JOBS", "2"))

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="workers must inherit the parent's algorithm registry (fork only)",
)

CONFIG = GeneratorConfig(n_sources=8, n_assertions=24, n_trees=(3, 4))

#: Generous wall guard: these runs take seconds; a hang would eat it all.
GUARD_SECONDS = 120.0


class _FlakyEngineFinder:
    """Runs the real EM engine, behind a FlakyBackend on even seeds.

    The injected fault fires *inside the worker process*, deep in the
    engine (the first ``m_step`` call), which is exactly the failure
    the ledger must carry back across the process boundary.
    """

    algorithm_name = "flaky-engine"
    accepts_trial_seed = True

    def __init__(self, seed=None, **_kwargs):
        self._seed = seed

    def fit(self, problem):
        backend = DenseBackend(problem)
        if self._seed % 2 == 0:
            backend = FlakyBackend(backend, fail_calls=(0,))
        driver = EMDriver(max_iterations=60, tolerance=1e-6)
        outcome = driver.run(backend, support_initialisation(backend))
        return FactFindingResult(
            algorithm=self.algorithm_name,
            scores=outcome.posterior,
            decisions=outcome.decisions,
        )


def _sleep_forever(_task):
    time.sleep(600)


def _reap_children(deadline_seconds=10.0):
    """Wait briefly for terminated pool workers to be reaped."""
    deadline = time.monotonic() + deadline_seconds
    while multiprocessing.active_children() and time.monotonic() < deadline:
        time.sleep(0.05)
    return multiprocessing.active_children()


@needs_fork
class TestWorkerFaultsSurface:
    def _run(self, parallel, policy):
        with temporary_algorithm(_FlakyEngineFinder) as name:
            return run_simulation(
                CONFIG,
                algorithms=("em", name),
                n_trials=4,
                seed=42,
                include_optimal=False,
                failure_policy=policy,
                parallel=parallel,
            )

    def test_backend_faults_in_workers_become_ledger_entries(self):
        start = time.monotonic()
        parallel = ParallelConfig(
            n_jobs=N_JOBS, start_method="fork", timeout_seconds=GUARD_SECONDS
        )
        pooled = self._run(parallel, FailurePolicy.skip())
        serial = self._run(None, FailurePolicy.skip())
        assert time.monotonic() - start < GUARD_SECONDS
        # The faults fired inside workers, yet the ledger is exactly the
        # serial one: same trials, same error type, same action.
        assert [
            (f.trial, f.algorithm, f.error_type, f.action) for f in pooled.failures
        ] == [
            (f.trial, f.algorithm, f.error_type, f.action) for f in serial.failures
        ]
        assert len(pooled.failures) > 0
        assert all(f.error_type == "InjectedFault" for f in pooled.failures)
        # The co-scheduled healthy algorithm still completed every trial.
        assert len(pooled.series["em"].accuracy) == 4

    def test_fail_fast_propagates_from_worker_without_hanging(self):
        start = time.monotonic()
        parallel = ParallelConfig(
            n_jobs=N_JOBS, start_method="fork", timeout_seconds=GUARD_SECONDS
        )
        with pytest.raises(InjectedFault):
            self._run(parallel, FailurePolicy.fail_fast())
        assert time.monotonic() - start < GUARD_SECONDS
        assert _reap_children() == []


class TestTimeoutGuard:
    def test_wedged_worker_is_killed_not_awaited(self):
        config = ParallelConfig(n_jobs=2, timeout_seconds=2.0)
        start = time.monotonic()
        with pytest.raises(WorkerTimeoutError, match="terminated"):
            list(parallel_imap(_sleep_forever, range(4), config=config))
        # Far less than the 600 s the worker wanted to sleep.
        assert time.monotonic() - start < 60.0
        assert _reap_children() == []


def _wedge_task_two(task):
    if task == 2:
        time.sleep(600)
    return task * task


def _wedge_once(payload):
    """Wedge on task 2 the *first* time only (a cross-process file flag)."""
    value, flag_path = payload
    if value == 2 and not os.path.exists(flag_path):
        open(flag_path, "w").close()
        time.sleep(600)
    return value * value


class TestWedgeResubmission:
    def test_transient_wedge_is_resubmitted_and_recovers(self, tmp_path):
        flag = str(tmp_path / "wedged-once")
        config = ParallelConfig(n_jobs=2, timeout_seconds=2.0, max_resubmits=2)
        start = time.monotonic()
        results = list(
            parallel_imap(
                _wedge_once, [(i, flag) for i in range(6)], config=config
            )
        )
        # The wedged chunk was killed, resubmitted and completed — the
        # full result set arrives with nothing lost.
        assert results == [i * i for i in range(6)]
        assert time.monotonic() - start < 60.0
        assert os.path.exists(flag)
        assert _reap_children() == []

    def test_exhausted_resubmissions_carry_forensic_context(self):
        config = ParallelConfig(n_jobs=2, timeout_seconds=1.5, max_resubmits=1)
        start = time.monotonic()
        with pytest.raises(WorkerTimeoutError) as excinfo:
            list(parallel_imap(_wedge_task_two, range(6), config=config))
        error = excinfo.value
        assert error.chunk_index == 2
        assert error.task_indices == (2,)
        assert error.n_resubmits == 1
        assert error.elapsed_seconds > 0.0
        assert "terminated" in str(error)
        assert time.monotonic() - start < 60.0
        assert _reap_children() == []

    def test_on_timeout_hook_degrades_instead_of_aborting(self):
        config = ParallelConfig(n_jobs=2, timeout_seconds=1.5)
        seen = []

        def substitute(index, task, error):
            seen.append((index, task, error.chunk_index))
            return -1

        start = time.monotonic()
        results = list(
            parallel_imap(
                _wedge_task_two, range(6), config=config, on_timeout=substitute
            )
        )
        assert results == [0, 1, -1, 9, 16, 25]
        assert seen == [(2, 2, 2)]
        assert time.monotonic() - start < 60.0
        assert _reap_children() == []


class _WedgingFinder:
    """Hangs forever on even trial seeds — the harness must not."""

    algorithm_name = "wedging-finder"
    accepts_trial_seed = True

    def __init__(self, seed=None, **_kwargs):
        self._seed = seed

    def fit(self, problem):
        if self._seed % 2 == 0:
            time.sleep(600)
        return make_fact_finder("em", seed=self._seed).fit(problem)


@needs_fork
class TestHarnessWedgeDegradation:
    def test_wedged_trials_become_timed_out_ledger_entries(self):
        from repro.resilience.policy import ACTION_TIMED_OUT

        start = time.monotonic()
        with temporary_algorithm(_WedgingFinder) as name:
            result = run_simulation(
                CONFIG,
                algorithms=("em", name),
                n_trials=4,
                seed=42,
                include_optimal=False,
                failure_policy=FailurePolicy.skip(),
                parallel=ParallelConfig(
                    n_jobs=N_JOBS, start_method="fork", timeout_seconds=4.0
                ),
            )
        assert time.monotonic() - start < GUARD_SECONDS
        timed_out = [f for f in result.failures if f.action == ACTION_TIMED_OUT]
        assert timed_out, "at least one trial must have wedged"
        assert all(f.error_type == "WorkerTimeoutError" for f in timed_out)
        assert all("wedged worker" in f.message for f in timed_out)
        # One ledger entry per co-scheduled algorithm of each lost trial.
        lost_trials = {f.trial for f in timed_out}
        assert len(timed_out) == 2 * len(lost_trials)
        # The surviving trials completed for every algorithm.
        assert len(result.series["em"].accuracy) == 4 - len(lost_trials)
        assert _reap_children() == []
