"""Unit tests of the execution layer: config validation, ordering, containment."""

import multiprocessing
import os

import pytest

from repro.parallel import (
    ParallelConfig,
    WorkerTimeoutError,
    cpu_count,
    merge_counters,
    merge_ledgers,
    parallel_imap,
    parallel_map,
    replay_events,
)
from repro.utils.errors import ValidationError


def _square(x):
    return x * x


def _pid(_):
    return os.getpid()


def _explode_on_three(x):
    if x == 3:
        raise ValueError("boom on 3")
    return x


class TestParallelConfig:
    def test_defaults_are_one_process_worker(self):
        config = ParallelConfig()
        assert config.n_jobs == 1
        assert config.backend == "process"
        assert config.chunk_size == 1
        assert config.timeout_seconds is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_jobs": 0},
            {"n_jobs": -2},
            {"backend": "threads"},
            {"chunk_size": 0},
            {"start_method": "magic"},
            {"timeout_seconds": 0.0},
            {"timeout_seconds": -1.0},
        ],
    )
    def test_invalid_fields_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            ParallelConfig(**kwargs)

    def test_all_cores_resolves_to_cpu_count(self):
        assert ParallelConfig(n_jobs=-1).resolve_jobs() == cpu_count()
        assert cpu_count() >= 1

    def test_effective_jobs_capped_by_tasks(self):
        assert ParallelConfig(n_jobs=8).effective_jobs(3) == 3
        assert ParallelConfig(n_jobs=2).effective_jobs(100) == 2
        assert ParallelConfig.serial().effective_jobs(100) == 1

    def test_constructors(self):
        assert ParallelConfig.serial().backend == "serial"
        assert ParallelConfig.processes().n_jobs == -1
        assert ParallelConfig.processes(3).n_jobs == 3


class TestParallelMap:
    def test_empty_task_list(self):
        assert parallel_map(_square, [], config=ParallelConfig(n_jobs=4)) == []

    def test_serial_backend_runs_in_process(self):
        pids = parallel_map(_pid, range(4), config=ParallelConfig.serial())
        assert set(pids) == {os.getpid()}

    def test_single_job_runs_in_process(self):
        pids = parallel_map(_pid, range(4), config=ParallelConfig(n_jobs=1))
        assert set(pids) == {os.getpid()}

    def test_process_backend_uses_workers(self):
        pids = parallel_map(_pid, range(8), config=ParallelConfig(n_jobs=2))
        assert os.getpid() not in pids

    @pytest.mark.parametrize("n_jobs", [1, 2, 4])
    @pytest.mark.parametrize("chunk_size", [1, 3])
    def test_results_preserve_task_order(self, n_jobs, chunk_size):
        config = ParallelConfig(n_jobs=n_jobs, chunk_size=chunk_size)
        assert parallel_map(_square, range(10), config=config) == [
            x * x for x in range(10)
        ]

    def test_imap_streams_in_order(self):
        stream = parallel_imap(_square, range(5), config=ParallelConfig(n_jobs=2))
        assert next(stream) == 0
        assert list(stream) == [1, 4, 9, 16]

    def test_worker_exception_reraised_in_parent(self):
        with pytest.raises(ValueError, match="boom on 3"):
            parallel_map(_explode_on_three, range(6), config=ParallelConfig(n_jobs=2))

    def test_worker_exception_raised_in_process_too(self):
        with pytest.raises(ValueError, match="boom on 3"):
            parallel_map(_explode_on_three, range(6), config=ParallelConfig.serial())

    def test_abandoned_stream_does_not_hang(self):
        stream = parallel_imap(_square, range(50), config=ParallelConfig(n_jobs=2))
        assert next(stream) == 0
        stream.close()  # must terminate the pool, not wait for 49 tasks

    def test_timeout_error_type_is_catchable(self):
        from repro.utils.errors import ReproError

        assert issubclass(WorkerTimeoutError, ReproError)


class TestMergeHelpers:
    def test_merge_ledgers_preserves_order(self):
        assert merge_ledgers([[1, 2], [], [3]]) == [1, 2, 3]

    def test_merge_counters_sums_keys(self):
        merged = merge_counters([{"a": 1, "b": 2}, {"b": 3, "c": 1}])
        assert merged == {"a": 1, "b": 5, "c": 1}

    def test_replay_events_skips_none_and_ignores_returns(self):
        seen = []

        def callback(event):
            seen.append(event)
            return True  # an early-stop request must be ignored on replay

        replay_events([1, 2, 3], (None, callback))
        assert seen == [1, 2, 3]
