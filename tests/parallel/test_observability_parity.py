"""Observability parity: worker-collected metrics/spans must equal serial.

Workers run their own observability session and ship spans + metric
snapshots back with each result; the parent grafts and merges them in
task order — the same replay discipline as telemetry events.  These
tests hold the line: for every parallel entry point, the merged
counters equal a serial run's counters exactly, and the span trees
carry the same names in the same trial order.
"""

import multiprocessing
import os

import pytest

from repro import observability
from repro.baselines import make_fact_finder
from repro.bounds import GibbsConfig, gibbs_bound
from repro.engine import DenseBackend, EMDriver, support_initialisation
from repro.eval import run_simulation
from repro.observability import validate_span_tree
from repro.parallel import ParallelConfig
from repro.resilience import FailurePolicy, InjectedFault, temporary_algorithm
from repro.synthetic import GeneratorConfig, empirical_parameters, generate_dataset

N_JOBS = int(os.environ.get("REPRO_TEST_N_JOBS", "4"))

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="workers must inherit the parent's algorithm registry (fork only)",
)

CONFIG = GeneratorConfig(n_sources=8, n_assertions=24, n_trees=(3, 4))


def _observed_run(fn):
    """Run ``fn`` under a fresh session; return (result, counters, root)."""
    with observability.observe() as session:
        result = fn()
    return result, session.metrics.snapshot()["counters"], session.finish()


def _span_names(span):
    """The tree's span names in depth-first order (timings stripped)."""
    names = [span.name]
    for child in span.children:
        names.extend(_span_names(child))
    return names


class TestHarnessObservabilityParity:
    def test_counters_and_span_order_match_serial(self):
        kwargs = dict(
            algorithms=("em", "em-ext"),
            n_trials=4,
            seed=123,
            include_optimal=True,
        )
        serial, serial_counters, serial_root = _observed_run(
            lambda: run_simulation(CONFIG, **kwargs)
        )
        pooled, pooled_counters, pooled_root = _observed_run(
            lambda: run_simulation(
                CONFIG, parallel=ParallelConfig(n_jobs=N_JOBS), **kwargs
            )
        )
        in_process, inproc_counters, inproc_root = _observed_run(
            lambda: run_simulation(
                CONFIG, parallel=ParallelConfig.serial(), **kwargs
            )
        )
        assert serial_counters == pooled_counters == inproc_counters
        assert serial_counters["harness.trials"] == 4
        # Same span names in the same (trial) order: worker trees are
        # grafted as the outcomes are consumed, which is trial order.
        assert (
            _span_names(serial_root)
            == _span_names(pooled_root)
            == _span_names(inproc_root)
        )
        for root in (serial_root, pooled_root, inproc_root):
            assert validate_span_tree(root) == []

    def test_disabled_parent_means_no_worker_collection(self):
        # No session in the parent -> the spec ships collect=False and
        # results carry no observability payload (and no session leaks).
        result = run_simulation(
            CONFIG,
            algorithms=("em",),
            n_trials=2,
            seed=5,
            include_optimal=False,
            parallel=ParallelConfig(n_jobs=2),
        )
        assert not observability.enabled()
        assert result.failures == []


class TestGibbsObservabilityParity:
    def test_sharded_bound_counters_match_serial(self):
        dataset = generate_dataset(CONFIG, seed=21)
        params = empirical_parameters(dataset.problem).clamp(1e-4)
        dependency = dataset.problem.dependency.values
        config = GibbsConfig(
            burn_in=20, min_sweeps=100, max_sweeps=400, check_interval=50
        )

        def bound(parallel):
            return gibbs_bound(
                dependency, params, config=config, seed=9, parallel=parallel
            )

        # The column-sharded decomposition (any ParallelConfig) runs a
        # different-but-equal set of samplers than the plain single
        # sampler, so parity is asserted across sharded variants — the
        # same contract as the serial-parity wall.
        results, counter_sets, roots = zip(
            *(
                _observed_run(lambda p=parallel: bound(p))
                for parallel in (
                    ParallelConfig(n_jobs=1),
                    ParallelConfig(n_jobs=N_JOBS),
                    ParallelConfig.serial(),
                )
            )
        )
        for counters in counter_sets[1:]:
            assert counters == counter_sets[0]
        assert counter_sets[0]["kernels.gibbs.sweeps"] > 0
        assert counter_sets[0]["bounds.gibbs.sampler_runs"] > 0
        for root in roots:
            assert validate_span_tree(root) == []
        assert results[0].total == results[1].total == results[2].total


class TestDriverObservabilityParity:
    def test_restart_fanout_counters_match_serial(self):
        dataset = generate_dataset(CONFIG, seed=5)
        backend = DenseBackend(dataset.problem.without_truth())

        def initialiser(index, rng):
            if index == 0:
                return support_initialisation(backend)
            return backend.random_params(rng)

        def fit(parallel):
            driver = EMDriver(
                max_iterations=80,
                tolerance=1e-8,
                n_restarts=3,
                parallel=parallel,
            )
            return driver.fit(backend, initialiser, seed=11)

        counter_sets = []
        roots = []
        for parallel in (None, ParallelConfig(n_jobs=N_JOBS), ParallelConfig.serial()):
            _, counters, root = _observed_run(lambda p=parallel: fit(p))
            counter_sets.append(counters)
            roots.append(root)
        assert counter_sets[0] == counter_sets[1] == counter_sets[2]
        assert counter_sets[0]["em.restarts"] == 3
        assert counter_sets[0]["em.iterations"] > 0
        for root in roots:
            assert validate_span_tree(root) == []
            assert _span_names(root) == _span_names(roots[0])


class _FlakySeedFinder:
    """Fails deterministically per trial seed (pure function of seed)."""

    algorithm_name = "flaky-seed-obs"
    accepts_trial_seed = True

    def __init__(self, seed=None, **_kwargs):
        self._seed = seed

    def fit(self, problem):
        if self._seed % 3 == 0:
            raise InjectedFault(f"flaky on seed {self._seed}")
        return make_fact_finder("em", seed=self._seed).fit(problem)


class _SeedBomb:
    """Dies on chosen seeds while armed; delegates when not."""

    algorithm_name = "seed-bomb-obs"
    accepts_trial_seed = True
    armed = True

    def __init__(self, seed=None, **_kwargs):
        self._seed = seed

    def fit(self, problem):
        if type(self).armed and self._seed % 5 == 0:
            raise InjectedFault(f"bomb armed on seed {self._seed}")
        return make_fact_finder("em", seed=self._seed).fit(problem)


@needs_fork
class TestPolicyObservabilityParity:
    def test_retry_counters_match_serial(self):
        # Seed 8 exercises both retried and skipped (see the serial
        # parity wall); the failure-action counters must agree across
        # execution modes, including the backoff bookkeeping.
        kwargs = dict(
            algorithms=("em", _FlakySeedFinder.algorithm_name),
            n_trials=6,
            seed=8,
            include_optimal=False,
            failure_policy=FailurePolicy.retry(max_attempts=2),
        )
        with temporary_algorithm(_FlakySeedFinder):
            serial, serial_counters, _ = _observed_run(
                lambda: run_simulation(CONFIG, **kwargs)
            )
            pooled, pooled_counters, _ = _observed_run(
                lambda: run_simulation(
                    CONFIG,
                    parallel=ParallelConfig(n_jobs=N_JOBS, start_method="fork"),
                    **kwargs,
                )
            )
        assert serial_counters == pooled_counters
        assert serial_counters["harness.failures.retried"] == sum(
            1 for f in serial.failures if f.action == "retried"
        )
        assert serial_counters["harness.failures.skipped"] == sum(
            1 for f in serial.failures if f.action == "skipped"
        )


@needs_fork
class TestCheckpointResumeObservability:
    def test_resumed_sweep_counts_only_remaining_trials(self, tmp_path):
        # Seed 7: the bomb fires on trial 3 (probed offline), leaving a
        # checkpoint with trials 0-2 done.  The resumed run's counters
        # must cover exactly the remaining trials.
        path = str(tmp_path / "sweep.ckpt")
        kwargs = dict(
            algorithms=("em", _SeedBomb.algorithm_name),
            n_trials=6,
            seed=7,
            include_optimal=False,
        )
        parallel = ParallelConfig(n_jobs=N_JOBS, start_method="fork")
        try:
            with temporary_algorithm(_SeedBomb):
                _SeedBomb.armed = True
                with pytest.raises(InjectedFault):
                    run_simulation(
                        CONFIG, checkpoint_path=path, parallel=parallel, **kwargs
                    )
                assert os.path.exists(path)
                _SeedBomb.armed = False
                resumed, resumed_counters, resumed_root = _observed_run(
                    lambda: run_simulation(
                        CONFIG, checkpoint_path=path, parallel=parallel, **kwargs
                    )
                )
        finally:
            _SeedBomb.armed = True
        assert validate_span_tree(resumed_root) == []
        n_resumed = resumed_counters["harness.trials"]
        assert 0 < n_resumed < 6
        assert resumed_root.children[0].name == "harness.run_simulation"
        trials = [
            c
            for c in resumed_root.children[0].children
            if c.name == "harness.trial"
        ]
        assert len(trials) == n_resumed
        # The trials that ran are the ones after the checkpoint, in order.
        assert [t.attributes["trial"] for t in trials] == list(
            range(6 - n_resumed, 6)
        )
