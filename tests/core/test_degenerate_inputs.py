"""Failure-injection tests: degenerate and adversarial inputs.

Estimators must behave sensibly — not crash, not emit NaN — on empty
matrices, all-zero claims, all-ones claims, single rows/columns, and
fully dependent data.
"""

import numpy as np
import pytest

from repro.baselines import EMPIRICAL_ALGORITHMS, make_fact_finder
from repro.core import EMExtEstimator, SensingProblem
from repro.bounds import exact_bound
from repro.synthetic import empirical_parameters


def _finders():
    for name in EMPIRICAL_ALGORITHMS:
        kwargs = {"seed": 0} if name in ("em", "em-social", "em-ext") else {}
        yield name, make_fact_finder(name, **kwargs)


@pytest.mark.parametrize(
    "claims",
    [
        np.zeros((4, 6), dtype=int),              # nobody claims anything
        np.ones((4, 6), dtype=int),               # everybody claims everything
        np.eye(4, 6, dtype=int),                  # one claim per source
    ],
    ids=["all-silent", "all-claiming", "diagonal"],
)
def test_every_algorithm_survives_degenerate_claims(claims):
    problem = SensingProblem.independent(claims)
    for name, finder in _finders():
        result = finder.fit(problem)
        assert np.isfinite(result.scores).all(), name
        assert result.scores.shape == (6,), name


def test_single_source_single_assertion():
    problem = SensingProblem.independent(np.array([[1]]))
    for name, finder in _finders():
        result = finder.fit(problem)
        assert result.scores.shape == (1,), name
        assert np.isfinite(result.scores).all(), name


def test_single_assertion_many_sources():
    problem = SensingProblem.independent(np.array([[1], [0], [1], [1]]))
    result = EMExtEstimator(seed=0).fit(problem)
    assert result.scores.shape == (1,)


def test_fully_dependent_matrix():
    """Every cell dependent: the independent parameters have no data."""
    claims = np.array([[1, 0, 1], [0, 1, 1]])
    dependency = np.ones_like(claims)
    problem = SensingProblem(claims, dependency)
    result = EMExtEstimator(seed=0).fit(problem)
    assert np.isfinite(result.scores).all()


def test_duplicate_rows_do_not_break_estimation():
    """Perfectly cloned sources (extreme correlation) stay finite."""
    row = np.array([1, 0, 1, 1, 0, 1, 0, 0])
    claims = np.tile(row, (6, 1))
    problem = SensingProblem.independent(claims)
    result = EMExtEstimator(seed=0).fit(problem)
    assert np.isfinite(result.scores).all()
    # Clones agree, so the posterior saturates in one direction per column.
    assert set(np.round(result.scores, 3)) <= {0.0, 1.0, 0.5}


def test_bound_on_degenerate_oracle():
    """Oracle parameters measured off constant data hit the clamp path."""
    claims = np.ones((3, 4), dtype=int)
    problem = SensingProblem.independent(claims, truth=np.array([1, 1, 0, 1]))
    params = empirical_parameters(problem)  # a = b = 1 exactly
    result = exact_bound(problem.dependency.values, params)
    assert 0.0 <= result.total <= 0.5


def test_conflicting_sources_stay_calibrated():
    """Two blocks of sources in perfect disagreement."""
    claims = np.vstack([np.tile([1, 0], (3, 5)), np.tile([0, 1], (3, 5))])
    problem = SensingProblem.independent(claims)
    result = EMExtEstimator(seed=0).fit(problem)
    assert np.isfinite(result.scores).all()
