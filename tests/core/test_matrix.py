"""Tests for repro.core.matrix."""

import numpy as np
import pytest

from repro.core import DependencyMatrix, SensingProblem, SourceClaimMatrix
from repro.utils.errors import ValidationError


class TestSourceClaimMatrix:
    def test_basic_shape(self):
        matrix = SourceClaimMatrix(np.array([[1, 0, 1], [0, 0, 1]]))
        assert matrix.shape == (2, 3)
        assert matrix.n_sources == 2
        assert matrix.n_assertions == 3
        assert matrix.n_claims == 3

    def test_density(self):
        matrix = SourceClaimMatrix(np.array([[1, 0], [0, 1]]))
        assert matrix.density == pytest.approx(0.5)

    def test_default_ids(self):
        matrix = SourceClaimMatrix(np.zeros((2, 2), dtype=int))
        assert matrix.source_ids == ["S0", "S1"]
        assert matrix.assertion_ids == ["C0", "C1"]

    def test_custom_ids_validated(self):
        with pytest.raises(ValidationError):
            SourceClaimMatrix(np.zeros((2, 2), dtype=int), source_ids=["a"])
        with pytest.raises(ValidationError):
            SourceClaimMatrix(np.zeros((2, 2), dtype=int), source_ids=["a", "a"])

    def test_non_binary_rejected(self):
        with pytest.raises(ValidationError):
            SourceClaimMatrix(np.array([[2, 0]]))

    def test_from_claims(self):
        matrix = SourceClaimMatrix.from_claims([(0, 1), (1, 0)], 2, 2)
        assert matrix[0, 1] == 1
        assert matrix[0, 0] == 0

    def test_from_claims_out_of_bounds(self):
        with pytest.raises(ValidationError):
            SourceClaimMatrix.from_claims([(5, 0)], 2, 2)

    def test_counting_helpers(self):
        matrix = SourceClaimMatrix(np.array([[1, 1, 0], [1, 0, 0]]))
        np.testing.assert_array_equal(matrix.claims_per_source(), [2, 1])
        np.testing.assert_array_equal(matrix.claims_per_assertion(), [2, 1, 0])
        np.testing.assert_array_equal(matrix.supporters(0), [0, 1])
        np.testing.assert_array_equal(matrix.silent_assertions(), [2])

    def test_equality(self):
        a = SourceClaimMatrix(np.array([[1, 0]]))
        b = SourceClaimMatrix(np.array([[1, 0]]))
        c = SourceClaimMatrix(np.array([[0, 1]]))
        assert a == b
        assert a != c


class TestDependencyMatrix:
    def test_independent_factory(self):
        dep = DependencyMatrix.independent(3, 4)
        assert dep.shape == (3, 4)
        assert dep.dependent_fraction == 0.0

    def test_dependent_fraction(self):
        dep = DependencyMatrix(np.array([[1, 0], [0, 0]]))
        assert dep.dependent_fraction == pytest.approx(0.25)

    def test_repr_mentions_count(self):
        dep = DependencyMatrix(np.array([[1, 1]]))
        assert "2" in repr(dep)


class TestSensingProblem:
    def test_from_fixture(self, tiny_problem):
        assert tiny_problem.n_sources == 3
        assert tiny_problem.n_assertions == 2
        assert tiny_problem.has_truth

    def test_accepts_raw_arrays(self):
        problem = SensingProblem(np.array([[1, 0]]), np.array([[0, 0]]))
        assert isinstance(problem.claims, SourceClaimMatrix)
        assert isinstance(problem.dependency, DependencyMatrix)

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError):
            SensingProblem(np.array([[1, 0]]), np.array([[0, 0], [0, 0]]))

    def test_truth_shape_checked(self):
        with pytest.raises(ValidationError):
            SensingProblem(np.array([[1, 0]]), np.array([[0, 0]]), truth=np.array([1]))

    def test_truth_binary_checked(self):
        with pytest.raises(ValidationError):
            SensingProblem(
                np.array([[1, 0]]), np.array([[0, 0]]), truth=np.array([1, 2])
            )

    def test_without_truth(self, tiny_problem):
        blind = tiny_problem.without_truth()
        assert not blind.has_truth
        assert blind.claims == tiny_problem.claims

    def test_independent_constructor(self):
        problem = SensingProblem.independent(np.array([[1, 1], [0, 1]]))
        assert problem.dependency.dependent_fraction == 0.0

    def test_dependent_claim_fraction(self, tiny_problem):
        # One of four claims is dependent (John's Main St claim).
        assert tiny_problem.dependent_claim_fraction() == pytest.approx(0.25)

    def test_dependent_claim_fraction_empty(self):
        problem = SensingProblem(np.zeros((2, 2), dtype=int), np.zeros((2, 2), dtype=int))
        assert problem.dependent_claim_fraction() == 0.0
