"""Tests for repro.core.model (SourceParameters)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import ParameterTrace, SourceParameters
from repro.utils.errors import ValidationError


class TestConstruction:
    def test_basic(self, small_params):
        assert small_params.n_sources == 3
        assert small_params.z == 0.6

    def test_mismatched_lengths(self):
        with pytest.raises(ValidationError):
            SourceParameters(
                a=np.array([0.5]), b=np.array([0.5, 0.5]),
                f=np.array([0.5]), g=np.array([0.5]), z=0.5,
            )

    def test_out_of_range_rate(self):
        with pytest.raises(ValidationError):
            SourceParameters(
                a=np.array([1.5]), b=np.array([0.5]),
                f=np.array([0.5]), g=np.array([0.5]), z=0.5,
            )

    def test_invalid_z(self):
        with pytest.raises(ValidationError):
            SourceParameters.from_scalars(2, a=0.5, b=0.5, f=0.5, g=0.5, z=1.5)

    def test_two_dimensional_rejected(self):
        with pytest.raises(ValidationError):
            SourceParameters(
                a=np.zeros((2, 2)), b=np.zeros(2), f=np.zeros(2), g=np.zeros(2), z=0.5
            )

    def test_from_scalars(self):
        params = SourceParameters.from_scalars(4, a=0.7, b=0.2, f=0.6, g=0.3, z=0.5)
        assert params.n_sources == 4
        np.testing.assert_allclose(params.a, 0.7)

    def test_from_scalars_rejects_nonpositive_count(self):
        with pytest.raises(ValidationError):
            SourceParameters.from_scalars(0, a=0.5, b=0.5, f=0.5, g=0.5, z=0.5)


class TestRandom:
    def test_deterministic(self):
        a = SourceParameters.random(5, seed=3)
        b = SourceParameters.random(5, seed=3)
        np.testing.assert_array_equal(a.a, b.a)

    def test_informative_bias(self):
        params = SourceParameters.random(200, seed=0, informative=True)
        assert params.a.mean() > params.b.mean()
        assert params.f.mean() > params.g.mean()

    def test_uninformative_covers_range(self):
        params = SourceParameters.random(500, seed=0, informative=False)
        assert params.a.min() < 0.2 and params.a.max() > 0.8


class TestClamp:
    def test_pushes_extremes_inward(self):
        params = SourceParameters(
            a=np.array([0.0, 1.0]), b=np.array([0.5, 0.5]),
            f=np.array([0.5, 0.5]), g=np.array([0.5, 0.5]), z=0.0,
        ).clamp(1e-3)
        assert params.a.min() == pytest.approx(1e-3)
        assert params.a.max() == pytest.approx(1 - 1e-3)
        assert params.z == pytest.approx(1e-3)

    def test_invalid_epsilon(self, small_params):
        with pytest.raises(ValidationError):
            small_params.clamp(0.7)


class TestOperations:
    def test_restrict(self, small_params):
        sub = small_params.restrict(np.array([0, 2]))
        assert sub.n_sources == 2
        assert sub.a[1] == small_params.a[2]

    def test_max_difference_zero_for_self(self, small_params):
        assert small_params.max_difference(small_params) == 0.0

    def test_max_difference_detects_change(self, small_params):
        other = SourceParameters(
            a=small_params.a.copy(), b=small_params.b.copy(),
            f=small_params.f.copy(), g=small_params.g.copy(), z=0.9,
        )
        assert small_params.max_difference(other) == pytest.approx(0.3)

    def test_max_difference_shape_mismatch(self, small_params):
        other = SourceParameters.from_scalars(2, a=0.5, b=0.5, f=0.5, g=0.5, z=0.5)
        with pytest.raises(ValidationError):
            small_params.max_difference(other)

    def test_roundtrip_dict(self, small_params):
        clone = SourceParameters.from_dict(small_params.to_dict())
        assert clone.max_difference(small_params) == 0.0

    def test_odds(self, small_params):
        np.testing.assert_allclose(
            small_params.independent_odds(), small_params.a / small_params.b
        )
        np.testing.assert_allclose(
            small_params.dependent_odds(), small_params.f / small_params.g
        )

    def test_odds_with_zero_denominator(self):
        params = SourceParameters(
            a=np.array([0.5]), b=np.array([0.0]),
            f=np.array([0.5]), g=np.array([0.0]), z=0.5,
        )
        assert np.isinf(params.independent_odds()[0])


class TestParameterTrace:
    def test_record(self):
        trace = ParameterTrace()
        trace.record(-10.0, 0.5)
        trace.record(-9.0, 0.1)
        assert trace.n_iterations == 2
        assert trace.log_likelihoods == [-10.0, -9.0]
        assert trace.parameter_deltas == [0.5, 0.1]


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=20),
    epsilon=st.floats(min_value=1e-9, max_value=0.49),
)
def test_clamp_always_in_range(n, epsilon):
    params = SourceParameters.random(n, seed=0, informative=False).clamp(epsilon)
    for name in ("a", "b", "f", "g"):
        rates = getattr(params, name)
        assert rates.min() >= epsilon - 1e-12
        assert rates.max() <= 1 - epsilon + 1e-12
