"""Tests for repro.core.likelihood (Table II / Equations 4-9)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SensingProblem, SourceParameters
from repro.core.likelihood import (
    column_log_likelihoods,
    data_log_likelihood,
    emission_probability,
    pattern_log_joint,
    posterior_from_log_likelihoods,
    posterior_truth,
)
from repro.utils.errors import ValidationError


class TestEmissionProbability:
    """Verify every row of Table II."""

    def test_table_ii(self, small_params):
        source = 0
        p = small_params
        cases = {
            (1, 0, 1): p.a[source],
            (1, 0, 0): 1 - p.a[source],
            (0, 0, 1): p.b[source],
            (0, 0, 0): 1 - p.b[source],
            (1, 1, 1): p.f[source],
            (1, 1, 0): 1 - p.f[source],
            (0, 1, 1): p.g[source],
            (0, 1, 0): 1 - p.g[source],
        }
        for (c, d, sc), expected in cases.items():
            assert emission_probability(sc, d, c, p, source) == pytest.approx(expected)

    def test_invalid_flags(self, small_params):
        with pytest.raises(ValidationError):
            emission_probability(2, 0, 1, small_params, 0)


class TestColumnLogLikelihoods:
    def test_matches_bruteforce(self, small_params):
        sc = np.array([[1, 0], [0, 1], [1, 1]], dtype=float)
        dep = np.array([[1, 0], [0, 0], [0, 1]], dtype=float)
        log_true, log_false = column_log_likelihoods(sc, dep, small_params)
        for j in range(2):
            expected_true = 1.0
            expected_false = 1.0
            for i in range(3):
                expected_true *= emission_probability(
                    int(sc[i, j]), int(dep[i, j]), 1, small_params, i
                )
                expected_false *= emission_probability(
                    int(sc[i, j]), int(dep[i, j]), 0, small_params, i
                )
            assert log_true[j] == pytest.approx(np.log(expected_true))
            assert log_false[j] == pytest.approx(np.log(expected_false))

    def test_shape_mismatch(self, small_params):
        with pytest.raises(ValidationError):
            column_log_likelihoods(np.zeros((3, 2)), np.zeros((2, 2)), small_params)

    def test_source_count_mismatch(self, small_params):
        with pytest.raises(ValidationError):
            column_log_likelihoods(np.zeros((4, 2)), np.zeros((4, 2)), small_params)

    def test_normalisation_over_patterns(self, small_params):
        """Σ over all claim patterns of P(pattern | C) equals 1."""
        d_column = np.array([0, 1, 0])
        for c_value in (0, 1):
            total = 0.0
            for pattern in itertools.product((0, 1), repeat=3):
                log_true, log_false = column_log_likelihoods(
                    np.array(pattern, dtype=float), d_column.astype(float), small_params
                )
                total += np.exp(log_true if c_value == 1 else log_false)
            assert total == pytest.approx(1.0)


class TestPatternLogJoint:
    def test_sums_to_marginal(self, small_params):
        d_column = np.array([0, 0, 1])
        total = 0.0
        for pattern in itertools.product((0, 1), repeat=3):
            log_joint_true, log_joint_false = pattern_log_joint(
                np.array(pattern), d_column, small_params
            )
            total += np.exp(log_joint_true) + np.exp(log_joint_false)
        assert total == pytest.approx(1.0)


class TestPosterior:
    def test_bayes_consistency(self, tiny_problem, small_params):
        posterior = posterior_truth(tiny_problem, small_params)
        assert posterior.shape == (2,)
        assert (posterior >= 0).all() and (posterior <= 1).all()

    def test_supported_assertion_more_credible(self, small_params):
        """An assertion everyone reports beats one nobody reports."""
        sc = np.array([[1, 0], [1, 0], [1, 0]])
        problem = SensingProblem.independent(sc)
        posterior = posterior_truth(problem, small_params)
        assert posterior[0] > posterior[1]

    def test_extreme_prior(self, tiny_problem, small_params):
        sure = SourceParameters(
            a=small_params.a, b=small_params.b, f=small_params.f, g=small_params.g,
            z=1.0,
        )
        posterior = posterior_truth(tiny_problem, sure)
        np.testing.assert_allclose(posterior, 1.0)

    def test_posterior_from_log_likelihoods_degenerate(self):
        posterior = posterior_from_log_likelihoods(
            np.array([-np.inf]), np.array([-np.inf]), 0.5
        )
        assert posterior[0] == pytest.approx(0.5)


class TestDataLogLikelihood:
    def test_finite_for_clamped_params(self, tiny_problem, small_params):
        assert np.isfinite(data_log_likelihood(tiny_problem, small_params))

    def test_matches_manual_sum(self, tiny_problem, small_params):
        log_true, log_false = column_log_likelihoods(
            tiny_problem.claims.values, tiny_problem.dependency.values, small_params
        )
        manual = np.log(
            np.exp(log_true) * small_params.z + np.exp(log_false) * (1 - small_params.z)
        ).sum()
        assert data_log_likelihood(tiny_problem, small_params) == pytest.approx(manual)


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_pattern_probabilities_normalise(n, seed):
    """Property: the emission model is a distribution for any θ and D."""
    rng = np.random.default_rng(seed)
    params = SourceParameters.random(n, seed=seed, informative=False).clamp(1e-9)
    d_column = (rng.random(n) < 0.5).astype(float)
    total_true = 0.0
    total_false = 0.0
    for pattern in itertools.product((0, 1), repeat=n):
        log_true, log_false = column_log_likelihoods(
            np.array(pattern, dtype=float), d_column, params
        )
        total_true += np.exp(log_true)
        total_false += np.exp(log_false)
    assert total_true == pytest.approx(1.0, abs=1e-9)
    assert total_false == pytest.approx(1.0, abs=1e-9)
