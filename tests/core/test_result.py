"""Tests for result containers."""

import numpy as np
import pytest

from repro.core import EstimationResult, FactFindingResult
from repro.utils.errors import ValidationError


class TestFactFindingResult:
    def test_basic(self):
        result = FactFindingResult(
            algorithm="test", scores=np.array([0.9, 0.1]), decisions=np.array([1, 0])
        )
        assert result.n_assertions == 2

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError):
            FactFindingResult(
                algorithm="t", scores=np.array([0.9]), decisions=np.array([1, 0])
            )

    def test_non_binary_decisions(self):
        with pytest.raises(ValidationError):
            FactFindingResult(
                algorithm="t", scores=np.array([0.9, 0.2]), decisions=np.array([1, 2])
            )

    def test_two_dimensional_scores(self):
        with pytest.raises(ValidationError):
            FactFindingResult(
                algorithm="t", scores=np.zeros((2, 2)), decisions=np.zeros((2, 2))
            )

    def test_ranking_sorted_desc(self):
        result = FactFindingResult(
            algorithm="t",
            scores=np.array([0.2, 0.9, 0.5]),
            decisions=np.array([0, 1, 1]),
        )
        np.testing.assert_array_equal(result.ranking(), [1, 2, 0])

    def test_ranking_stable_for_ties(self):
        result = FactFindingResult(
            algorithm="t",
            scores=np.array([0.5, 0.5, 0.5]),
            decisions=np.array([1, 1, 1]),
        )
        np.testing.assert_array_equal(result.ranking(), [0, 1, 2])

    def test_top_k(self):
        result = FactFindingResult(
            algorithm="t",
            scores=np.array([0.2, 0.9, 0.5]),
            decisions=np.array([0, 1, 1]),
        )
        np.testing.assert_array_equal(result.top_k(2), [1, 2])
        # k beyond m returns everything.
        assert result.top_k(10).size == 3

    def test_top_k_negative(self):
        result = FactFindingResult(
            algorithm="t", scores=np.array([0.5]), decisions=np.array([1])
        )
        with pytest.raises(ValidationError):
            result.top_k(-1)


class TestEstimationResult:
    def test_posterior_alias(self):
        result = EstimationResult(
            algorithm="em-ext",
            scores=np.array([0.7]),
            decisions=np.array([1]),
            log_likelihood=-10.0,
            converged=True,
            n_iterations=5,
        )
        np.testing.assert_array_equal(result.posterior, result.scores)
        assert result.converged
