"""Tests for the EM-Ext estimator (Algorithm 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import EMConfig, EMExtEstimator, SensingProblem, SourceParameters, run_em_ext
from repro.core.likelihood import data_log_likelihood
from repro.engine import DenseBackend
from repro.synthetic import GeneratorConfig, generate_dataset
from repro.utils.errors import ValidationError


class TestEMConfig:
    def test_defaults_valid(self):
        config = EMConfig()
        assert config.max_iterations == 200
        assert config.init_strategy == "staged"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_iterations": 0},
            {"tolerance": 0.0},
            {"epsilon": 0.0},
            {"epsilon": 0.6},
            {"n_restarts": 0},
            {"smoothing": -1.0},
            {"init_strategy": "nope"},
        ],
    )
    def test_invalid_configs(self, kwargs):
        with pytest.raises(ValidationError):
            EMConfig(**kwargs)


class TestFit:
    def test_returns_valid_result(self, synthetic_dataset):
        result = EMExtEstimator(seed=0).fit(synthetic_dataset.problem.without_truth())
        assert result.algorithm == "em-ext"
        assert result.scores.shape == (synthetic_dataset.problem.n_assertions,)
        assert ((result.scores >= 0) & (result.scores <= 1)).all()
        assert set(np.unique(result.decisions)) <= {0, 1}
        assert result.n_iterations >= 1
        assert result.parameters is not None

    def test_deterministic_given_seed(self, synthetic_dataset):
        blind = synthetic_dataset.problem.without_truth()
        a = EMExtEstimator(seed=42).fit(blind)
        b = EMExtEstimator(seed=42).fit(blind)
        np.testing.assert_array_equal(a.scores, b.scores)

    def test_recovers_truth_on_informative_data(self):
        """With many assertions the estimator nails both labels and θ."""
        config = GeneratorConfig(n_sources=40, n_assertions=400)
        dataset = generate_dataset(config, seed=3)
        result = EMExtEstimator(seed=0).fit(dataset.problem.without_truth())
        accuracy = (result.decisions == dataset.problem.truth).mean()
        assert accuracy > 0.85
        # z estimate lands near the true prior.
        assert abs(result.parameters.z - dataset.problem.truth.mean()) < 0.1

    def test_convergence_flag(self, synthetic_dataset):
        result = EMExtEstimator(
            EMConfig(max_iterations=500, tolerance=1e-5), seed=0
        ).fit(synthetic_dataset.problem.without_truth())
        assert result.converged

    def test_max_iterations_respected(self, synthetic_dataset):
        result = EMExtEstimator(EMConfig(max_iterations=2), seed=0).fit(
            synthetic_dataset.problem.without_truth()
        )
        assert result.n_iterations <= 2

    def test_restarts_never_worse_likelihood(self, synthetic_dataset):
        blind = synthetic_dataset.problem.without_truth()
        single = EMExtEstimator(EMConfig(n_restarts=1), seed=5).fit(blind)
        multi = EMExtEstimator(EMConfig(n_restarts=4), seed=5).fit(blind)
        assert multi.log_likelihood >= single.log_likelihood - 1e-6

    def test_initial_parameters_used(self, synthetic_dataset):
        blind = synthetic_dataset.problem.without_truth()
        init = SourceParameters.from_scalars(
            blind.n_sources, a=0.7, b=0.2, f=0.6, g=0.3, z=0.6
        )
        result = EMExtEstimator(seed=0, initial_parameters=init).fit(blind)
        assert result.n_iterations >= 1

    def test_initial_parameters_wrong_size(self, synthetic_dataset):
        blind = synthetic_dataset.problem.without_truth()
        init = SourceParameters.from_scalars(2, a=0.7, b=0.2, f=0.6, g=0.3, z=0.6)
        with pytest.raises(ValidationError):
            EMExtEstimator(seed=0, initial_parameters=init).fit(blind)

    def test_monotone_log_likelihood(self, synthetic_dataset):
        """EM's observed-data likelihood never decreases (up to float noise)."""
        result = EMExtEstimator(
            EMConfig(init_strategy="random"), seed=1
        ).fit(synthetic_dataset.problem.without_truth())
        lls = result.trace.log_likelihoods
        diffs = np.diff(lls)
        assert (diffs >= -1e-6).all()

    def test_all_init_strategies_run(self, synthetic_dataset):
        blind = synthetic_dataset.problem.without_truth()
        for strategy in ("staged", "support", "random"):
            result = EMExtEstimator(EMConfig(init_strategy=strategy), seed=0).fit(blind)
            assert result.scores.size == blind.n_assertions

    def test_empty_dependency_matches_independent_model(self):
        """With D = 0 everywhere the f, g parameters never move."""
        sc = np.array([[1, 0, 1], [0, 1, 1], [1, 1, 0]])
        problem = SensingProblem.independent(sc)
        result = EMExtEstimator(EMConfig(init_strategy="random"), seed=0).fit(problem)
        # f and g have empty partitions: they keep their initial values,
        # and the likelihood must not depend on them.
        params = result.parameters
        perturbed = SourceParameters(
            a=params.a, b=params.b,
            f=np.clip(params.f + 0.1, 0.01, 0.99),
            g=np.clip(params.g + 0.1, 0.01, 0.99),
            z=params.z,
        )
        assert data_log_likelihood(problem, perturbed) == pytest.approx(
            data_log_likelihood(problem, params)
        )

    def test_run_em_ext_wrapper(self, synthetic_dataset):
        result = run_em_ext(synthetic_dataset.problem.without_truth(), seed=0)
        assert result.algorithm == "em-ext"


class TestMStep:
    def test_m_step_closed_form(self, small_params):
        """Equations (10)-(14) against a hand computation."""
        epsilon = EMConfig().epsilon
        sc = np.array([[1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])
        dep = np.array([[1.0, 0.0], [0.0, 0.0], [0.0, 1.0]])
        backend = DenseBackend(SensingProblem(claims=sc, dependency=dep))
        posterior = np.array([0.8, 0.4])
        new = backend.m_step(posterior, small_params)
        # Source 1 (no dependent cells): a = (Z0 + Z1) / (Z0 + Z1) = 1 → clamped.
        assert new.a[1] == pytest.approx(1.0 - epsilon)
        # Source 0: independent cells = column 1 only; claim 0 there.
        # a_0 = 0 / Z1 = 0 → clamped to ε.
        assert new.a[0] == pytest.approx(epsilon)
        # Source 0: dependent cells = column 0, claimed: f_0 = Z0/Z0 = 1.
        assert new.f[0] == pytest.approx(1.0 - epsilon)
        # Source 2: dependent cell = column 1, claimed: g_2 = Y1/Y1 = 1.
        assert new.g[2] == pytest.approx(1.0 - epsilon)
        # z = mean posterior.
        assert new.z == pytest.approx(0.6)

    def test_empty_partition_keeps_previous(self, small_params):
        sc = np.zeros((3, 2))
        dep = np.zeros((3, 2))
        backend = DenseBackend(SensingProblem(claims=sc, dependency=dep))
        posterior = np.array([0.5, 0.5])
        new = backend.m_step(posterior, small_params)
        np.testing.assert_allclose(new.f, small_params.f)
        np.testing.assert_allclose(new.g, small_params.g)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1000))
def test_posterior_always_valid(seed):
    dataset = generate_dataset(GeneratorConfig(n_sources=10, n_assertions=15), seed=seed)
    result = EMExtEstimator(EMConfig(max_iterations=30), seed=seed).fit(
        dataset.problem.without_truth()
    )
    assert np.isfinite(result.scores).all()
    assert (result.scores >= 0).all() and (result.scores <= 1).all()
