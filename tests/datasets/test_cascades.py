"""Tests for cascade analytics."""

import pytest

from repro.datasets import (
    AssertionLabel,
    Tweet,
    extract_cascades,
    simulate_dataset,
    summarize_cascades,
    virality_by_label,
)
from repro.utils.errors import DataError


def _tweet(tweet_id, user, time, assertion=0, retweet_of=None):
    return Tweet(
        tweet_id=tweet_id, user=user, time=time, text="x",
        assertion=assertion, retweet_of=retweet_of,
    )


@pytest.fixture
def chain():
    """0 <- 1 <- 2 (a depth-2 cascade) plus a singleton 3."""
    return [
        _tweet(0, 10, 1.0),
        _tweet(1, 11, 2.0, retweet_of=0),
        _tweet(2, 12, 3.0, retweet_of=1),
        _tweet(3, 13, 4.0, assertion=1),
    ]


class TestExtractCascades:
    def test_chain_structure(self, chain):
        cascades = extract_cascades(chain)
        assert len(cascades) == 2
        big = cascades[0]
        assert big.root_id == 0
        assert big.size == 3
        assert big.depth == 2
        assert big.users == 3
        assert cascades[1].size == 1

    def test_orphan_retweet_becomes_root(self):
        cascades = extract_cascades([_tweet(5, 1, 1.0, retweet_of=99)])
        assert cascades[0].root_id == 5
        assert cascades[0].depth == 0

    def test_duplicate_ids_rejected(self):
        with pytest.raises(DataError):
            extract_cascades([_tweet(0, 1, 1.0), _tweet(0, 2, 2.0)])

    def test_empty(self):
        assert extract_cascades([]) == []


class TestSummaries:
    def test_summary_values(self, chain):
        summary = summarize_cascades(chain)
        assert summary.n_cascades == 2
        assert summary.n_singletons == 1
        assert summary.max_size == 3
        assert summary.retweet_fraction == pytest.approx(0.5)

    def test_empty_summary(self):
        summary = summarize_cascades([])
        assert summary.n_cascades == 0
        assert summary.mean_size == 0.0


class TestViralityByLabel:
    def test_hand_computed(self, chain):
        labels = [AssertionLabel.FALSE, AssertionLabel.TRUE]
        virality = virality_by_label(chain, labels)
        # Assertion 0 (false): 1 original, 2 retweets; assertion 1 (true):
        # 1 original, 0 retweets.
        assert virality[AssertionLabel.FALSE] == pytest.approx(2.0)
        assert virality[AssertionLabel.TRUE] == 0.0

    def test_unlabelled_assertion_rejected(self, chain):
        with pytest.raises(DataError):
            virality_by_label(chain, [AssertionLabel.TRUE])

    def test_simulator_design_goal(self):
        """In the simulated crawls, rumours out-cascade verified news."""
        dataset = simulate_dataset("ukraine", scale=0.2, seed=5)
        virality = virality_by_label(dataset.tweets, dataset.labels)
        assert virality[AssertionLabel.FALSE] > virality[AssertionLabel.TRUE]
