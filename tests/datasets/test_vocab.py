"""Tests for tweet-text vocabularies."""

import numpy as np
import pytest

from repro.datasets import VOCABULARIES, get_vocabulary
from repro.datasets.vocab import render_tweet_text
from repro.utils.errors import ValidationError


def test_all_five_themes_present():
    assert set(VOCABULARIES) == {
        "ukraine", "kirkuk", "superbug", "la_marathon", "paris_attack",
    }


def test_unknown_theme():
    with pytest.raises(ValidationError):
        get_vocabulary("moon_landing")


def test_render_assertion_nonempty_and_themed():
    rng = np.random.default_rng(0)
    vocabulary = get_vocabulary("paris_attack")
    sentence = vocabulary.render_assertion(rng)
    assert len(sentence.split()) >= 5
    assert sentence.startswith(tuple(vocabulary.subjects))


def test_render_assertion_varies():
    rng = np.random.default_rng(0)
    vocabulary = get_vocabulary("ukraine")
    sentences = {vocabulary.render_assertion(rng) for _ in range(20)}
    assert len(sentences) > 5


def test_retweet_text_has_rt_prefix():
    rng = np.random.default_rng(0)
    text = render_tweet_text("base sentence", rng, retweet_user=17)
    assert text == "RT @user17: base sentence"


def test_original_text_contains_canonical():
    rng = np.random.default_rng(0)
    for _ in range(10):
        text = render_tweet_text("base sentence #tag", rng)
        assert "base sentence #tag" in text
