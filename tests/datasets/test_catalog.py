"""Tests for the dataset catalogue and Table III summaries."""

import pytest

from repro.datasets import (
    DATASET_ORDER,
    DATASET_SPECS,
    benchmark_scale,
    format_table,
    get_spec,
    simulate_dataset,
    summarize_catalog,
    target_row,
)
from repro.utils.errors import ValidationError


class TestCatalog:
    def test_five_datasets_in_order(self):
        assert DATASET_ORDER == [
            "ukraine", "kirkuk", "superbug", "la_marathon", "paris_attack",
        ]
        assert set(DATASET_SPECS) == set(DATASET_ORDER)

    def test_specs_match_table_iii_targets(self):
        spec = get_spec("paris_attack")
        assert spec.n_assertions == 23513
        assert spec.n_sources == 38844
        assert spec.n_claims == 41249
        assert spec.n_original_claims == 38794
        assert spec.evaluation_day == "Nov 14 2015"

    def test_unknown_dataset(self):
        with pytest.raises(ValidationError):
            get_spec("mars_landing")

    def test_benchmark_scale(self):
        assert benchmark_scale("paris_attack", target_assertions=400) == pytest.approx(
            400 / 23513
        )
        # Small datasets never get scaled above 1.
        assert benchmark_scale("ukraine", target_assertions=10**6) == 1.0

    def test_simulate_dataset_by_name(self):
        dataset = simulate_dataset("la_marathon", scale=0.03, seed=0)
        assert dataset.spec.name == "LA Marathon"


class TestSummaries:
    def test_target_rows(self):
        row = target_row("ukraine")
        assert row.n_assertions == 3703
        assert row.location == "Ukraine"

    def test_summarize_subset(self):
        summaries = summarize_catalog(["kirkuk"], scale=0.04, seed=0)
        assert len(summaries) == 1
        assert summaries[0].name == "Kirkuk"

    def test_format_table_layout(self):
        summaries = summarize_catalog(["kirkuk"], scale=0.04, seed=0)
        text = format_table(summaries)
        lines = text.splitlines()
        assert "Dataset" in lines[0]
        assert lines[1].startswith("---")
        assert "Kirkuk" in text
