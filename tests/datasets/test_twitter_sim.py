"""Tests for the Twitter platform simulation."""

import pytest

from repro.datasets import (
    AssertionLabel,
    DatasetSpec,
    TwitterSimulator,
    get_spec,
    relative_errors,
    simulate_dataset,
    target_row,
)
from repro.utils.errors import ValidationError


@pytest.fixture(scope="module")
def small_sim():
    """A scaled-down Ukraine simulation shared across tests."""
    return simulate_dataset("ukraine", scale=0.12, seed=7)


class TestSpec:
    def test_duration_positive(self):
        for name in ("ukraine", "kirkuk", "superbug", "la_marathon", "paris_attack"):
            spec = get_spec(name)
            assert spec.duration_days > 0
            assert 0 <= spec.evaluation_offset_days < spec.duration_days

    def test_invalid_counts(self):
        with pytest.raises(ValidationError):
            DatasetSpec(
                name="x", theme="ukraine", location="X",
                start_time="Feb 20 12:15:28 2015", end_time="Mar 31 23:10:12 2015",
                evaluation_day="Mar 14 2015",
                n_assertions=10, n_sources=10, n_claims=5, n_original_claims=8,
            )

    def test_invalid_fractions(self):
        with pytest.raises(ValidationError):
            DatasetSpec(
                name="x", theme="ukraine", location="X",
                start_time="Feb 20 12:15:28 2015", end_time="Mar 31 23:10:12 2015",
                evaluation_day="Mar 14 2015",
                n_assertions=10, n_sources=10, n_claims=15, n_original_claims=8,
                true_fraction=0.9, opinion_fraction=0.2,
            )

    def test_invalid_scale(self):
        with pytest.raises(ValidationError):
            TwitterSimulator(get_spec("ukraine"), scale=0.0)
        with pytest.raises(ValidationError):
            TwitterSimulator(get_spec("ukraine"), scale=1.5)


class TestSimulationCounts:
    def test_counts_match_targets(self, small_sim):
        summary = small_sim.summary()
        target = target_row("ukraine")
        errors = relative_errors(summary, target)
        scale = small_sim.scale
        # Claims and assertions are matched by construction (scaled);
        # compare against the scaled targets.
        assert summary.n_assertions == pytest.approx(target.n_assertions * scale, rel=0.05)
        assert summary.n_total_claims == pytest.approx(
            target.n_total_claims * scale, rel=0.05
        )
        assert summary.n_original_claims == pytest.approx(
            target.n_original_claims * scale, rel=0.05
        )
        # Distinct sources land within 20% of the scaled target.
        assert summary.n_sources == pytest.approx(target.n_sources * scale, rel=0.2)
        assert set(errors) == {
            "n_assertions", "n_sources", "n_total_claims", "n_original_claims",
        }

    def test_claims_are_unique_pairs(self, small_sim):
        pairs = [(t.user, t.assertion) for t in small_sim.tweets]
        assert len(pairs) == len(set(pairs))

    def test_retweets_reference_earlier_tweets(self, small_sim):
        by_id = {t.tweet_id: t for t in small_sim.tweets}
        for tweet in small_sim.tweets:
            if tweet.is_retweet:
                parent = by_id[tweet.retweet_of]
                assert parent.time <= tweet.time
                assert parent.assertion == tweet.assertion

    def test_retweeter_follows_author(self, small_sim):
        by_id = {t.tweet_id: t for t in small_sim.tweets}
        for tweet in small_sim.tweets:
            if tweet.is_retweet:
                parent = by_id[tweet.retweet_of]
                assert small_sim.graph.follows(tweet.user, parent.user)

    def test_labels_cover_three_classes(self, small_sim):
        labels = set(small_sim.labels)
        assert AssertionLabel.TRUE in labels
        assert AssertionLabel.FALSE in labels
        assert AssertionLabel.OPINION in labels

    def test_deterministic(self):
        a = simulate_dataset("kirkuk", scale=0.05, seed=3)
        b = simulate_dataset("kirkuk", scale=0.05, seed=3)
        assert [(t.tweet_id, t.user, t.assertion) for t in a.tweets] == [
            (t.tweet_id, t.user, t.assertion) for t in b.tweets
        ]


class TestEvaluationSlice:
    def test_slice_shape(self, small_sim):
        evaluation = small_sim.evaluation_slice()
        assert evaluation.n_sources == len(evaluation.source_ids)
        assert evaluation.n_assertions == len(evaluation.assertion_ids)
        assert len(evaluation.labels) == evaluation.n_assertions
        assert evaluation.problem.has_truth

    def test_slice_times_within_day(self, small_sim):
        day_start = small_sim.spec.evaluation_offset_days
        for tweet in small_sim.evaluation_tweets():
            assert day_start <= tweet.time < day_start + 1.0

    def test_binary_truth_projects_labels(self, small_sim):
        evaluation = small_sim.evaluation_slice()
        for label, truth in zip(evaluation.labels, evaluation.problem.truth):
            assert truth == (1 if label is AssertionLabel.TRUE else 0)

    def test_slice_has_dependent_claims(self, small_sim):
        """Eval-day cascades must survive the slicing."""
        evaluation = small_sim.evaluation_slice()
        assert evaluation.problem.dependent_claim_fraction() > 0.05


class TestTextRendering:
    def test_retweets_marked_in_text(self, small_sim):
        for tweet in small_sim.tweets:
            if tweet.is_retweet:
                assert tweet.text.startswith("RT @user")

    def test_assertion_texts_distinct_enough(self, small_sim):
        texts = set(small_sim.assertion_texts)
        assert len(texts) > 0.8 * len(small_sim.assertion_texts)
