"""Tests for the simulator's behavioural mechanisms (DESIGN.md §6).

These verify the *design goals* of the substitution — the properties
that make the simulated crawls a valid stand-in for the paper's data —
rather than surface statistics.
"""

import numpy as np
import pytest

from repro.datasets import AssertionLabel, simulate_dataset
from repro.datasets.twitter_sim import TwitterSimulator, _EVAL_DAY_SHARE


@pytest.fixture(scope="module")
def crawl():
    return simulate_dataset("superbug", scale=0.25, seed=17)


class TestRetweetAcceptance:
    def test_reliable_users_shun_rumours(self):
        accept = TwitterSimulator._retweet_acceptance
        assert accept(AssertionLabel.FALSE, True) < 0.1
        assert accept(AssertionLabel.TRUE, True) > 0.8

    def test_unreliable_users_amplify_rumours(self):
        accept = TwitterSimulator._retweet_acceptance
        assert accept(AssertionLabel.FALSE, False) > accept(
            AssertionLabel.TRUE, False
        )

    def test_all_probabilities(self):
        accept = TwitterSimulator._retweet_acceptance
        for label in AssertionLabel:
            for reliable in (True, False):
                assert 0.0 <= accept(label, reliable) <= 1.0


class TestRealizedStructure:
    def test_rumour_retweeters_skew_unreliable(self, crawl):
        """The realised false cascades flow through less-trustworthy users.

        Measured indirectly: retweeters of false assertions originate
        false content more often than retweeters of true assertions.
        """
        by_id = {t.tweet_id: t for t in crawl.tweets}
        false_retweeters = set()
        true_retweeters = set()
        for tweet in crawl.tweets:
            if not tweet.is_retweet:
                continue
            label = crawl.labels[tweet.assertion]
            if label is AssertionLabel.FALSE:
                false_retweeters.add(tweet.user)
            elif label is AssertionLabel.TRUE:
                true_retweeters.add(tweet.user)

        def _false_origination(users):
            originals = 0
            false_originals = 0
            for tweet in crawl.tweets:
                if tweet.is_retweet or tweet.user not in users:
                    continue
                originals += 1
                if crawl.labels[tweet.assertion] is AssertionLabel.FALSE:
                    false_originals += 1
            return false_originals / max(originals, 1)

        assert _false_origination(false_retweeters) > _false_origination(
            true_retweeters
        )
        del by_id

    def test_eval_day_concentration(self, crawl):
        """Roughly the configured share of assertions bursts on the
        evaluation day."""
        day_start = crawl.spec.evaluation_offset_days
        eval_assertions = {
            t.assertion
            for t in crawl.tweets
            if day_start <= t.time < day_start + 1.0 and not t.is_retweet
        }
        share = len(eval_assertions) / crawl.n_assertions
        assert abs(share - _EVAL_DAY_SHARE) < 0.15

    def test_popular_accounts_have_followers(self, crawl):
        """Preferential attachment: retweeted authors have many followers."""
        by_id = {t.tweet_id: t for t in crawl.tweets}
        retweeted_authors = {
            by_id[t.retweet_of].user for t in crawl.tweets if t.is_retweet
        }
        if not retweeted_authors:
            pytest.skip("no retweets at this scale")
        mean_followers = np.mean(
            [len(crawl.graph.followers(a)) for a in retweeted_authors]
        )
        overall = np.mean(
            [len(crawl.graph.followers(s)) for s in range(crawl.graph.n_sources)]
        )
        assert mean_followers > overall

    def test_opinion_share_near_spec(self, crawl):
        opinion_share = sum(
            1 for label in crawl.labels if label is AssertionLabel.OPINION
        ) / len(crawl.labels)
        assert abs(opinion_share - crawl.spec.opinion_fraction) < 0.08
