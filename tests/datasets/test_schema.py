"""Tests for dataset record types."""

import pytest

from repro.datasets import AssertionLabel, DatasetSummary, Tweet
from repro.utils.errors import ValidationError


class TestAssertionLabel:
    def test_verifiability(self):
        assert AssertionLabel.TRUE.is_verifiable
        assert AssertionLabel.FALSE.is_verifiable
        assert not AssertionLabel.OPINION.is_verifiable

    def test_values(self):
        assert AssertionLabel("true") is AssertionLabel.TRUE


class TestTweet:
    def test_basic(self):
        tweet = Tweet(tweet_id=0, user=1, time=0.5, text="hello", assertion=2)
        assert not tweet.is_retweet

    def test_retweet(self):
        tweet = Tweet(
            tweet_id=1, user=1, time=0.5, text="RT", assertion=2, retweet_of=0
        )
        assert tweet.is_retweet

    def test_negative_time(self):
        with pytest.raises(ValidationError):
            Tweet(tweet_id=0, user=1, time=-1.0, text="x", assertion=0)

    def test_self_retweet(self):
        with pytest.raises(ValidationError):
            Tweet(tweet_id=3, user=1, time=0.0, text="x", assertion=0, retweet_of=3)


class TestDatasetSummary:
    def test_row_matches_header_length(self):
        summary = DatasetSummary(
            name="X", start_time="a", end_time="b", evaluation_day="c",
            n_assertions=1, n_sources=2, n_total_claims=3, n_original_claims=2,
            location="L",
        )
        assert len(summary.as_row()) == len(DatasetSummary.header())

    def test_header_matches_table_iii(self):
        header = DatasetSummary.header()
        assert "#Assertions" in header
        assert "#Original Claims" in header
