"""Tests for oracle parameter extraction."""

import numpy as np
import pytest

from repro.core import SensingProblem
from repro.synthetic import (
    GeneratorConfig,
    analytic_parameters,
    empirical_parameters,
    generate_dataset,
)
from repro.utils.errors import ValidationError


class TestEmpiricalParameters:
    def test_requires_truth(self, synthetic_dataset):
        with pytest.raises(ValidationError):
            empirical_parameters(synthetic_dataset.problem.without_truth())

    def test_hand_computed(self):
        sc = np.array([[1, 0, 1], [0, 1, 0]])
        dep = np.array([[0, 0, 1], [0, 0, 0]])
        truth = np.array([1, 0, 1])
        params = empirical_parameters(SensingProblem(sc, dep, truth=truth))
        # Source 0: independent true cells = column 0 only (column 2 is
        # dependent): claimed → a = 1. Independent false = column 1,
        # unclaimed → b = 0. Dependent true = column 2, claimed → f = 1.
        assert params.a[0] == pytest.approx(1.0)
        assert params.b[0] == pytest.approx(0.0)
        assert params.f[0] == pytest.approx(1.0)
        # Source 0 has no dependent false cells → g falls back to 0.5.
        assert params.g[0] == pytest.approx(0.5)
        # Source 1: a = (0 + 0)/2 = 0 over columns {0, 2}; b = 1.
        assert params.a[1] == pytest.approx(0.0)
        assert params.b[1] == pytest.approx(1.0)
        assert params.z == pytest.approx(2 / 3)

    def test_matches_generator_rates(self):
        """On a large cell-mode dataset the oracle recovers the true rates."""
        config = GeneratorConfig(
            n_sources=10, n_assertions=3000, n_trees=10,
            p_on=0.6, p_indep_true=(0.7, 0.7), true_ratio=0.5,
        )
        dataset = generate_dataset(config, seed=0)
        params = empirical_parameters(dataset.problem)
        np.testing.assert_allclose(params.a, 0.6 * 0.7, atol=0.05)
        np.testing.assert_allclose(params.b, 0.6 * 0.3, atol=0.05)

    def test_z_is_truth_mean(self, synthetic_dataset):
        params = empirical_parameters(synthetic_dataset.problem)
        assert params.z == pytest.approx(synthetic_dataset.problem.truth.mean())


class TestAnalyticParameters:
    def test_cell_mode_closed_form(self):
        config = GeneratorConfig(
            p_on=0.6, p_indep_true=(2 / 3, 2 / 3), p_dep=0.5, p_dep_true=(0.5, 0.5)
        )
        params = analytic_parameters(config, n_trees=9, true_ratio=0.6)
        assert params.a[0] == pytest.approx(0.6 * 2 / 3)
        assert params.b[0] == pytest.approx(0.6 * 1 / 3)
        assert params.f[0] == pytest.approx(0.25)
        assert params.g[0] == pytest.approx(0.25)
        assert params.z == pytest.approx(30 / 50)

    def test_pool_mode_rates_bounded(self):
        config = GeneratorConfig(mode="pool")
        params = analytic_parameters(config, n_trees=9, true_ratio=0.6)
        assert (params.a > 0).all() and (params.a < 1).all()
        assert (params.b > 0).all() and (params.b < 1).all()

    def test_validation(self):
        config = GeneratorConfig()
        with pytest.raises(ValidationError):
            analytic_parameters(config, n_trees=0, true_ratio=0.6)
        with pytest.raises(ValidationError):
            analytic_parameters(config, n_trees=5, true_ratio=1.0)

    def test_analytic_near_empirical(self):
        """Analytic midpoint rates approximate measured rates."""
        config = GeneratorConfig(
            n_sources=20, n_assertions=1000,
            p_on=0.6, p_indep_true=(2 / 3, 2 / 3),
            p_dep=0.5, p_dep_true=(0.5, 0.5),
            n_trees=10, true_ratio=0.6,
        )
        dataset = generate_dataset(config, seed=3)
        empirical = empirical_parameters(dataset.problem)
        analytic = analytic_parameters(config, n_trees=10, true_ratio=0.6)
        assert abs(empirical.a.mean() - analytic.a[0]) < 0.05
        assert abs(empirical.b.mean() - analytic.b[0]) < 0.05
