"""Tests for the generator configuration."""

import pytest

from repro.synthetic import GeneratorConfig
from repro.utils.errors import ValidationError


class TestDefaults:
    def test_paper_defaults(self):
        config = GeneratorConfig.paper_defaults()
        assert config.n_sources == 20
        assert config.n_assertions == 50
        assert config.n_trees == (8, 10)
        assert config.p_on == (0.5, 0.7)
        assert config.true_ratio == (0.55, 0.75)
        assert config.mode == "cell"

    def test_estimator_defaults(self):
        config = GeneratorConfig.estimator_defaults()
        assert config.n_sources == 50

    def test_estimator_defaults_override(self):
        config = GeneratorConfig.estimator_defaults(n_sources=30)
        assert config.n_sources == 30


class TestNormalisation:
    def test_scalar_ranges_normalised(self):
        config = GeneratorConfig(p_on=0.6, n_trees=5)
        assert config.p_on == (0.6, 0.6)
        assert config.n_trees == (5, 5)

    def test_effective_rounds_default(self):
        assert GeneratorConfig().effective_rounds == 50
        assert GeneratorConfig(rounds=7).effective_rounds == 7


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_sources": 0},
            {"n_assertions": 0},
            {"n_trees": (0, 5)},
            {"n_trees": (5, 3)},
            {"n_trees": (1, 25)},  # exceeds default 20 sources
            {"p_on": (0.7, 0.5)},
            {"p_on": (0.5, 1.5)},
            {"true_ratio": -0.1},
            {"mode": "quantum"},
            {"rounds": -1},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValidationError):
            GeneratorConfig(**kwargs)


class TestOddsHelpers:
    def test_dependent_odds(self):
        config = GeneratorConfig().with_dependent_odds(2.0)
        low, high = config.p_dep_true
        assert low == high == pytest.approx(2.0 / 3.0)

    def test_independent_odds(self):
        config = GeneratorConfig().with_independent_odds(1.0)
        assert config.p_indep_true == (0.5, 0.5)

    def test_invalid_odds(self):
        with pytest.raises(ValidationError):
            GeneratorConfig().with_dependent_odds(0.0)
        with pytest.raises(ValidationError):
            GeneratorConfig().with_independent_odds(-1.0)

    def test_other_fields_preserved(self):
        config = GeneratorConfig(n_sources=33).with_dependent_odds(1.5)
        assert config.n_sources == 33
