"""Tests for the Section V-A synthetic workload generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.synthetic import GeneratorConfig, SyntheticGenerator, generate_dataset


class TestShapes:
    def test_matrix_shapes(self, synthetic_dataset):
        problem = synthetic_dataset.problem
        assert problem.claims.shape == (20, 50)
        assert problem.dependency.shape == (20, 50)
        assert problem.truth.shape == (50,)

    def test_realized_parameters_recorded(self, synthetic_dataset):
        realized = synthetic_dataset.realized
        assert realized.n_sources == 20
        assert 8 <= realized.n_trees <= 10
        assert 0.55 <= realized.true_ratio <= 0.75
        assert realized.n_true_assertions == int(synthetic_dataset.truth.sum())

    def test_parameter_ranges_respected(self, synthetic_dataset):
        realized = synthetic_dataset.realized
        assert (realized.p_on >= 0.5).all() and (realized.p_on <= 0.7).all()
        assert (realized.p_dep >= 0.4).all() and (realized.p_dep <= 0.6).all()

    def test_truth_ratio_matches_draw(self, synthetic_dataset):
        realized = synthetic_dataset.realized
        expected = int(np.ceil(realized.true_ratio * 50))
        assert int(synthetic_dataset.truth.sum()) == min(expected, 49)


class TestDeterminism:
    def test_same_seed_same_data(self):
        a = generate_dataset(GeneratorConfig(), seed=5)
        b = generate_dataset(GeneratorConfig(), seed=5)
        np.testing.assert_array_equal(a.problem.claims.values, b.problem.claims.values)
        np.testing.assert_array_equal(a.problem.truth, b.problem.truth)

    def test_different_seeds_differ(self):
        a = generate_dataset(GeneratorConfig(), seed=5)
        b = generate_dataset(GeneratorConfig(), seed=6)
        assert not np.array_equal(a.problem.claims.values, b.problem.claims.values)

    def test_generate_many_are_independent(self):
        generator = SyntheticGenerator(GeneratorConfig(), seed=0)
        datasets = generator.generate_many(3)
        assert len(datasets) == 3
        assert not np.array_equal(
            datasets[0].problem.claims.values, datasets[1].problem.claims.values
        )


class TestDependencyStructure:
    def test_roots_never_dependent(self, synthetic_dataset):
        dependency = synthetic_dataset.problem.dependency.values
        for root in synthetic_dataset.forest.roots:
            assert dependency[root].sum() == 0

    def test_dependent_cells_match_parent_claims(self, synthetic_dataset):
        """A leaf's dependent cells are exactly its root's claimed columns."""
        problem = synthetic_dataset.problem
        sc = problem.claims.values
        dependency = problem.dependency.values
        for leaf, parent in synthetic_dataset.forest.parent.items():
            parent_claims = sc[parent] == 1
            np.testing.assert_array_equal(dependency[leaf], parent_claims.astype(int))

    def test_fully_independent_config(self):
        dataset = generate_dataset(GeneratorConfig(n_trees=20), seed=1)
        assert dataset.problem.dependency.dependent_fraction == 0.0

    def test_single_tree_maximises_dependency(self):
        single = generate_dataset(GeneratorConfig(n_trees=1), seed=1)
        many = generate_dataset(GeneratorConfig(n_trees=15), seed=1)
        assert (
            single.problem.dependency.dependent_fraction
            > many.problem.dependency.dependent_fraction
        )


class TestCellModeStatistics:
    def test_cell_rates_match_model(self):
        """Empirical root claim rates converge to p_on · bias."""
        config = GeneratorConfig(
            n_sources=10,
            n_assertions=4000,
            n_trees=10,  # all roots
            p_on=0.6,
            p_indep_true=(2 / 3, 2 / 3),
            true_ratio=0.5,
        )
        dataset = generate_dataset(config, seed=0)
        sc = dataset.problem.claims.values
        truth = dataset.problem.truth
        a_hat = sc[:, truth == 1].mean()
        b_hat = sc[:, truth == 0].mean()
        assert a_hat == pytest.approx(0.6 * 2 / 3, abs=0.02)
        assert b_hat == pytest.approx(0.6 * 1 / 3, abs=0.02)

    def test_leaf_dependent_rates_match_model(self):
        config = GeneratorConfig(
            n_sources=30,
            n_assertions=2000,
            n_trees=1,
            p_on=0.6,
            p_dep=0.5,
            p_dep_true=(0.8, 0.8),
            p_indep_true=(2 / 3, 2 / 3),
            true_ratio=0.5,
        )
        dataset = generate_dataset(config, seed=0)
        problem = dataset.problem
        sc = problem.claims.values
        dep = problem.dependency.values
        truth = problem.truth
        dep_true = (dep == 1) & (truth[None, :] == 1)
        dep_false = (dep == 1) & (truth[None, :] == 0)
        f_hat = sc[dep_true].mean()
        g_hat = sc[dep_false].mean()
        assert f_hat == pytest.approx(0.5 * 0.8, abs=0.03)
        assert g_hat == pytest.approx(0.5 * 0.2, abs=0.03)


class TestPoolMode:
    def test_pool_mode_runs(self):
        dataset = generate_dataset(GeneratorConfig(mode="pool", rounds=10), seed=2)
        assert dataset.problem.claims.n_claims > 0

    def test_pool_mode_no_duplicate_claims(self):
        """A source claims each assertion at most once (matrix is 0/1)."""
        dataset = generate_dataset(GeneratorConfig(mode="pool"), seed=2)
        log = dataset.log
        pairs = [(p.source, p.assertion) for p in log]
        assert len(pairs) == len(set(pairs))

    def test_pool_mode_rounds_bound_claims(self):
        dataset = generate_dataset(GeneratorConfig(mode="pool", rounds=3), seed=2)
        per_source = dataset.problem.claims.claims_per_source()
        assert per_source.max() <= 3


class TestEventLogConsistency:
    def test_log_matches_matrix(self, synthetic_dataset):
        matrix = synthetic_dataset.log.to_claim_matrix(20, 50)
        np.testing.assert_array_equal(
            matrix.values, synthetic_dataset.problem.claims.values
        )

    def test_roots_post_before_leaves(self, synthetic_dataset):
        roots = set(synthetic_dataset.forest.roots)
        for post in synthetic_dataset.log:
            if post.source in roots:
                assert post.time < 1.0
            else:
                assert post.time >= 1.0


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_generator_invariants(seed):
    """Property: labels are binary, matrices align, D only on leaf rows."""
    dataset = generate_dataset(GeneratorConfig(n_sources=12, n_assertions=20), seed=seed)
    problem = dataset.problem
    assert set(np.unique(problem.truth)) <= {0, 1}
    assert problem.claims.shape == problem.dependency.shape
    roots = set(dataset.forest.roots)
    dependency = problem.dependency.values
    for source in roots:
        assert dependency[source].sum() == 0
