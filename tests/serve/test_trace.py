"""Trace round-trip and replay-harness tests."""

import json

import numpy as np
import pytest

from repro.core.em_ext import EMConfig
from repro.serve import (
    MODE_BATCHED,
    MODE_SERIAL,
    SERVE_TRACE_SCHEMA,
    EstimationRequest,
    fit_request,
    generate_trace,
    load_trace,
    replay_trace,
    results_bitwise_equal,
)
from repro.synthetic import GeneratorConfig, generate_dataset
from repro.utils.errors import DataError, ValidationError

SMALL = dict(n_sources=10, n_assertions=14)


def write_trace(path, **kwargs):
    kwargs = {"n_requests": 6, "seed": 3, **SMALL, **kwargs}
    generate_trace(str(path), **kwargs)
    return str(path)


class TestGenerateAndLoad:
    def test_roundtrip_preserves_the_workload(self, tmp_path):
        path = write_trace(tmp_path / "trace.jsonl", distinct_problems=3)
        requests = load_trace(path)
        assert len(requests) == 6
        assert [r.request_id for r in requests] == [
            f"req-{i:05d}" for i in range(6)
        ]
        assert all(r.algorithm == "em-ext" for r in requests)
        assert all(r.problem.n_sources == 10 for r in requests)
        assert all(
            r.config == EMConfig(init_strategy="random", n_restarts=1)
            for r in requests
        )
        # distinct_problems=3 means requests repeat with period 3 —
        # identical problem object (memoised) and identical seed.
        assert requests[3].problem is requests[0].problem
        assert requests[3].seed == requests[0].seed
        assert requests[1].problem is not requests[0].problem

    def test_header_carries_the_schema(self, tmp_path):
        path = write_trace(tmp_path / "trace.jsonl")
        with open(path, "r", encoding="utf-8") as handle:
            header = json.loads(handle.readline())
        assert header["schema"] == SERVE_TRACE_SCHEMA
        assert header["n_requests"] == 6

    def test_generation_is_deterministic(self, tmp_path):
        first = write_trace(tmp_path / "a.jsonl")
        second = write_trace(tmp_path / "b.jsonl")
        assert (
            open(first, encoding="utf-8").read()
            == open(second, encoding="utf-8").read()
        )

    def test_inline_problem_records_load(self, tmp_path):
        problem = generate_dataset(
            GeneratorConfig(**SMALL), seed=5
        ).problem.without_truth()
        path = tmp_path / "inline.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(
                json.dumps({"schema": SERVE_TRACE_SCHEMA, "n_requests": 1})
                + "\n"
            )
            handle.write(
                json.dumps(
                    {
                        "request_id": "inline-0",
                        "claims": problem.claims.values.tolist(),
                        "dependency": problem.dependency.values.tolist(),
                        "seed": 5,
                        "algorithm": "voting",
                    }
                )
                + "\n"
            )
        (request,) = load_trace(str(path))
        assert request.algorithm == "voting"
        assert np.array_equal(
            request.problem.claims.values, problem.claims.values
        )

    def test_bad_inputs_raise_data_errors(self, tmp_path):
        bad_schema = tmp_path / "bad.jsonl"
        bad_schema.write_text('{"schema": "nope/v9"}\n')
        with pytest.raises(DataError, match="unsupported trace schema"):
            load_trace(str(bad_schema))
        bad_json = tmp_path / "broken.jsonl"
        bad_json.write_text("{not json\n")
        with pytest.raises(DataError, match="invalid JSON"):
            load_trace(str(bad_json))
        empty = tmp_path / "empty.jsonl"
        empty.write_text(
            json.dumps({"schema": SERVE_TRACE_SCHEMA, "n_requests": 0}) + "\n"
        )
        with pytest.raises(DataError, match="no requests"):
            load_trace(str(empty))
        with pytest.raises(ValidationError):
            generate_trace(str(tmp_path / "x.jsonl"), n_requests=0)


class TestReplay:
    def test_batched_replay_verifies_clean(self, tmp_path):
        requests = load_trace(write_trace(tmp_path / "trace.jsonl"))
        report = replay_trace(requests, mode=MODE_BATCHED, verify=True)
        assert report.mode == MODE_BATCHED
        assert report.n_requests == 6
        assert report.n_ok == 6 and report.n_errors == 0
        assert report.path_counts == {"batched": 6}
        assert report.n_verified == 6
        assert report.n_mismatches == 0
        assert report.wall_seconds > 0
        assert report.throughput_rps > 0
        assert report.latency_p50_ms <= report.latency_p99_ms

    def test_serial_replay_is_the_direct_fit_baseline(self, tmp_path):
        requests = load_trace(write_trace(tmp_path / "trace.jsonl"))
        report = replay_trace(requests, mode=MODE_SERIAL)
        assert report.path_counts == {"serial": 6}
        for response, request in zip(report.responses, requests):
            assert results_bitwise_equal(
                response.result, fit_request(request)
            )

    def test_batched_and_serial_replays_agree_bitwise(self, tmp_path):
        requests = load_trace(
            write_trace(tmp_path / "trace.jsonl", distinct_problems=2)
        )
        batched = replay_trace(requests, mode=MODE_BATCHED)
        serial = replay_trace(requests, mode=MODE_SERIAL)
        for ours, reference in zip(batched.responses, serial.responses):
            assert ours.request_id == reference.request_id
            assert results_bitwise_equal(ours.result, reference.result)

    def test_rejects_unknown_mode(self, tmp_path):
        requests = load_trace(write_trace(tmp_path / "trace.jsonl"))
        with pytest.raises(ValidationError, match="mode"):
            replay_trace(requests, mode="parallel")

    def test_report_row_is_json_serialisable(self, tmp_path):
        requests = load_trace(write_trace(tmp_path / "trace.jsonl"))
        report = replay_trace(requests, mode=MODE_BATCHED)
        row = json.loads(json.dumps(report.to_row()))
        assert row["mode"] == MODE_BATCHED
        assert row["n_ok"] == 6
        assert "responses" not in row
        assert isinstance(report.summary(), str)
        assert "6/6 ok" in report.summary()


class TestBitwiseComparator:
    def test_detects_payload_differences(self):
        problem = generate_dataset(
            GeneratorConfig(**SMALL), seed=7
        ).problem.without_truth()
        config = EMConfig(init_strategy="random")
        base = fit_request(
            EstimationRequest("a", problem, seed=1, config=config)
        )
        same = fit_request(
            EstimationRequest("b", problem, seed=1, config=config)
        )
        other = fit_request(
            EstimationRequest("c", problem, seed=2, config=config)
        )
        heuristic = fit_request(
            EstimationRequest("d", problem, algorithm="voting")
        )
        assert results_bitwise_equal(base, same)
        assert not results_bitwise_equal(base, other)
        assert not results_bitwise_equal(base, heuristic)
