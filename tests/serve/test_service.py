"""Test wall of the estimation service.

The service's central promise is path transparency: batched, serial and
cached responses are bit-for-bit what the request's direct fit
(:func:`repro.serve.fit_request`) returns.  Everything here hangs off
that oracle, plus the admission-control and telemetry contracts.
"""

import time

import pytest

from repro import observability
from repro.core.em_ext import EMConfig
from repro.resilience.supervisor import BreakerConfig
from repro.serve import (
    PATH_BATCHED,
    PATH_CACHE,
    PATH_REJECTED,
    PATH_SERIAL,
    EstimationRequest,
    EstimationService,
    FingerprintCache,
    PendingRequest,
    ServiceConfig,
    batch_key,
    fit_request,
    plan_batches,
    problem_fingerprint,
    request_fingerprint,
    results_bitwise_equal,
)
from repro.serve import service as service_module
from repro.synthetic import GeneratorConfig, generate_dataset
from repro.utils.errors import ServiceOverloaded, ValidationError

FAST_CONFIG = EMConfig(init_strategy="random", max_iterations=60)


def make_problem(seed, n_sources=10, n_assertions=14):
    config = GeneratorConfig(n_sources=n_sources, n_assertions=n_assertions)
    return generate_dataset(config, seed=seed).problem.without_truth()


def make_request(request_id, seed, **kwargs):
    kwargs.setdefault("config", FAST_CONFIG)
    return EstimationRequest(
        request_id=request_id, problem=make_problem(seed), seed=seed, **kwargs
    )


@pytest.fixture(scope="module")
def fleet():
    """Eight same-shape requests plus their direct-fit reference results."""
    requests = [make_request(f"req-{i}", i) for i in range(8)]
    return requests, [fit_request(request) for request in requests]


class TestParity:
    def test_batched_responses_equal_direct_fits(self, fleet):
        requests, references = fleet
        responses = EstimationService().serve(requests)
        assert [r.request_id for r in responses] == [
            q.request_id for q in requests
        ]
        for response, reference in zip(responses, references):
            assert response.ok
            assert response.path == PATH_BATCHED
            assert results_bitwise_equal(response.result, reference)

    def test_serial_fallbacks_equal_direct_fits(self, fleet):
        requests, _ = fleet
        # A lone em-ext request, a CSR request and a heuristic request
        # all take the serial path; each must still match the oracle.
        pytest.importorskip("scipy")
        odd = [
            make_request("lone", 50),
            EstimationRequest(
                "csr", make_problem(51).csr_view(), seed=51, config=FAST_CONFIG
            ),
            EstimationRequest("vote", make_problem(52), algorithm="voting"),
        ]
        responses = EstimationService().serve(odd)
        for response, request in zip(responses, odd):
            assert response.ok
            assert response.path == PATH_SERIAL
            assert results_bitwise_equal(response.result, fit_request(request))

    def test_mixed_drain_answers_in_submission_order(self, fleet):
        requests, references = fleet
        mixed = [
            requests[0],
            EstimationRequest("sums", make_problem(60), algorithm="sums"),
            requests[1],
        ]
        responses = EstimationService().serve(mixed)
        assert [r.request_id for r in responses] == ["req-0", "sums", "req-1"]
        assert responses[0].path == PATH_BATCHED
        assert responses[1].path == PATH_SERIAL
        assert results_bitwise_equal(responses[0].result, references[0])
        assert results_bitwise_equal(responses[2].result, references[1])

    def test_seeded_em_baselines_match_direct_construction(self):
        for algorithm in ("em", "em-social", "em-pooled"):
            request = EstimationRequest(
                f"{algorithm}-req",
                make_problem(70),
                algorithm=algorithm,
                config=None,
                seed=3,
            )
            (response,) = EstimationService().serve([request])
            assert response.ok, response.error
            assert results_bitwise_equal(
                response.result, fit_request(request)
            )


class TestResultCache:
    def test_identical_request_hits_cache_on_second_drain(self, fleet):
        requests, references = fleet
        service = EstimationService()
        first = service.serve(requests[:2])
        second = service.serve(requests[:2])
        assert all(r.path == PATH_BATCHED for r in first)
        assert all(r.path == PATH_CACHE for r in second)
        for response, reference in zip(second, references[:2]):
            assert results_bitwise_equal(response.result, reference)
        assert service.n_cache_hits == 2

    def test_cache_can_be_disabled(self, fleet):
        requests, _ = fleet
        service = EstimationService(ServiceConfig(result_cache_slots=0))
        service.serve(requests[:2])
        second = service.serve(requests[:2])
        assert all(r.path != PATH_CACHE for r in second)
        assert service.n_cache_hits == 0

    def test_generator_seeded_request_is_never_cached(self):
        import numpy as np

        service = EstimationService()
        problem = make_problem(80)
        for attempt in ("first", "second"):
            (response,) = service.serve(
                [
                    EstimationRequest(
                        attempt,
                        problem,
                        seed=np.random.default_rng(0),
                        config=FAST_CONFIG,
                    )
                ]
            )
            assert response.path == PATH_SERIAL
        assert service.n_cache_hits == 0


class TestWarmStart:
    def test_warm_start_equals_direct_fit_with_cached_parameters(self):
        service = EstimationService()
        cold = make_request("cold", 90)
        (first,) = service.serve([cold])
        warm = EstimationRequest(
            "warm", cold.problem, seed=90, config=FAST_CONFIG, warm_start=True
        )
        (second,) = service.serve([warm])
        assert second.ok
        reference = fit_request(
            warm, initial_parameters=first.result.parameters
        )
        assert results_bitwise_equal(second.result, reference)

    def test_warm_start_without_history_is_a_cold_fit(self):
        request = make_request("no-history", 91, warm_start=True)
        (response,) = EstimationService().serve([request])
        assert response.ok
        assert results_bitwise_equal(response.result, fit_request(request))


class TestAdmission:
    def test_unknown_algorithm_is_refused_at_the_door(self):
        service = EstimationService()
        with pytest.raises(ValidationError, match="unknown algorithm"):
            service.submit(
                EstimationRequest("bad", make_problem(1), algorithm="nope")
            )
        assert service.queue_depth == 0

    def test_full_queue_raises_service_overloaded(self):
        service = EstimationService(ServiceConfig(max_queue_depth=2))
        service.submit(make_request("a", 1))
        service.submit(make_request("b", 2))
        with pytest.raises(ServiceOverloaded) as excinfo:
            service.submit(make_request("c", 3))
        assert excinfo.value.queue_depth == 2
        assert excinfo.value.max_queue_depth == 2

    def test_serve_drains_through_overload(self, fleet):
        requests, references = fleet
        service = EstimationService(ServiceConfig(max_queue_depth=3))
        responses = service.serve(requests)
        assert [r.request_id for r in responses] == [
            q.request_id for q in requests
        ]
        for response, reference in zip(responses, references):
            assert response.ok
            assert results_bitwise_equal(response.result, reference)

    def test_expired_deadline_rejects_without_fitting(self):
        service = EstimationService()
        service.submit(make_request("stale", 1, timeout_seconds=0.005))
        time.sleep(0.02)
        (response,) = service.drain()
        assert not response.ok
        assert response.path == PATH_REJECTED
        assert response.error_type == "DeadlineExceeded"
        assert service.n_completed == 0
        # Staleness is not an algorithm fault: the breaker stays closed
        # and the next request runs normally.
        (retry,) = service.serve([make_request("fresh", 1)])
        assert retry.ok

    def test_default_timeout_applies_to_bare_requests(self):
        service = EstimationService(
            ServiceConfig(default_timeout_seconds=0.005)
        )
        service.submit(make_request("stale", 1))
        time.sleep(0.02)
        (response,) = service.drain()
        assert response.error_type == "DeadlineExceeded"


class TestBreaker:
    BREAKER = BreakerConfig(
        failure_threshold=0.5, window=4, min_calls=2, cooldown_calls=4
    )

    def test_repeated_failures_open_the_breaker(self, monkeypatch):
        def explode(request, *, initial_parameters=None):
            raise RuntimeError("fit exploded")

        monkeypatch.setattr(service_module, "fit_request", explode)
        service = EstimationService(ServiceConfig(breaker=self.BREAKER))
        poisoned = [
            EstimationRequest(f"bad-{i}", make_problem(i), algorithm="voting")
            for i in range(3)
        ]
        responses = service.serve(poisoned)
        assert all(r.error_type == "RuntimeError" for r in responses)
        (refused,) = service.serve(
            [EstimationRequest("next", make_problem(9), algorithm="voting")]
        )
        assert refused.path == PATH_REJECTED
        assert refused.error_type == "CircuitOpenError"
        assert service.stats()["breakers"]["voting"]["state"] == "open"

    def test_breakers_are_per_algorithm(self, monkeypatch):
        def explode(request, *, initial_parameters=None):
            raise RuntimeError("fit exploded")

        monkeypatch.setattr(service_module, "fit_request", explode)
        service = EstimationService(ServiceConfig(breaker=self.BREAKER))
        service.serve(
            [
                EstimationRequest(f"bad-{i}", make_problem(i), algorithm="voting")
                for i in range(3)
            ]
        )
        monkeypatch.undo()
        # The voting breaker is open; em-ext is untouched and still fits.
        (response,) = service.serve([make_request("good", 1)])
        assert response.ok


class TestDrainBudget:
    def test_exhausted_budget_fails_packs_without_tripping_breakers(self):
        service = EstimationService(
            ServiceConfig(drain_budget_seconds=1e-6)
        )
        responses = service.serve(
            [make_request(f"req-{i}", i) for i in range(4)]
        )
        assert all(r.error_type == "DeadlineExceeded" for r in responses)
        assert service.stats()["breakers"]["em-ext"]["state"] == "closed"


class TestBatchPlanner:
    def pend(self, request, position):
        return PendingRequest(request=request, position=position)

    def test_same_shape_requests_share_a_pack(self):
        items = [self.pend(make_request(f"r{i}", i), i) for i in range(3)]
        packs, serial = plan_batches(items, max_batch_size=32)
        assert len(packs) == 1
        assert [p.request.request_id for p in packs[0]] == ["r0", "r1", "r2"]
        assert serial == []

    def test_groups_chunk_to_the_lane_budget(self):
        items = [self.pend(make_request(f"r{i}", i), i) for i in range(5)]
        packs, serial = plan_batches(items, max_batch_size=2)
        assert [len(pack) for pack in packs] == [2, 2]
        # The size-1 tail chunk goes serial as a singleton.
        assert [(p.request.request_id, reason) for p, reason in serial] == [
            ("r4", "singleton")
        ]

    def test_fallback_reasons(self):
        pytest.importorskip("scipy")
        items = [
            self.pend(
                EstimationRequest("h", make_problem(1), algorithm="sums"), 0
            ),
            self.pend(
                EstimationRequest(
                    "c", make_problem(2).csr_view(), config=FAST_CONFIG
                ),
                1,
            ),
            self.pend(make_request("s", 3), 2),
        ]
        packs, serial = plan_batches(items, max_batch_size=32)
        assert packs == []
        assert {(p.request.request_id, r) for p, r in serial} == {
            ("h", "algorithm"),
            ("c", "format"),
            ("s", "singleton"),
        }

    def test_different_configs_never_share_a_pack(self):
        slow = EMConfig(init_strategy="random", max_iterations=61)
        items = [
            self.pend(make_request("a", 1), 0),
            self.pend(make_request("b", 2, config=slow), 1),
        ]
        packs, serial = plan_batches(items, max_batch_size=32)
        assert packs == []
        assert all(reason == "singleton" for _, reason in serial)

    def test_batch_key_none_for_unbatchable(self):
        assert batch_key(
            EstimationRequest("h", make_problem(1), algorithm="voting")
        ) is None
        assert batch_key(make_request("d", 1)) == (10, 14, FAST_CONFIG)


class TestFingerprints:
    def test_problem_fingerprint_is_content_keyed(self):
        first = make_problem(1)
        again = make_problem(1)
        other = make_problem(2)
        assert first is not again
        assert problem_fingerprint(first) == problem_fingerprint(again)
        assert problem_fingerprint(first) != problem_fingerprint(other)

    def test_request_fingerprint_covers_seed_and_config(self):
        problem = make_problem(1)
        base = EstimationRequest("r", problem, seed=1, config=FAST_CONFIG)
        same = EstimationRequest("other-id", problem, seed=1, config=FAST_CONFIG)
        assert request_fingerprint(base) == request_fingerprint(same)
        reseeded = EstimationRequest("r", problem, seed=2, config=FAST_CONFIG)
        assert request_fingerprint(base) != request_fingerprint(reseeded)
        reconfigured = EstimationRequest("r", problem, seed=1, config=None)
        assert request_fingerprint(base) != request_fingerprint(reconfigured)

    def test_unstable_requests_have_no_fingerprint(self):
        import numpy as np

        problem = make_problem(1)
        warm = EstimationRequest("w", problem, seed=1, warm_start=True)
        assert request_fingerprint(warm) is None
        generator = EstimationRequest(
            "g", problem, seed=np.random.default_rng(0)
        )
        assert request_fingerprint(generator) is None

    def test_fingerprint_cache_evicts_least_recently_used(self):
        cache = FingerprintCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes "a"; "b" is now LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert len(cache) == 2


class TestObservability:
    def test_counters_and_spans_cover_the_drain(self, fleet):
        requests, _ = fleet
        workload = list(requests[:4]) + [
            EstimationRequest("vote", make_problem(61), algorithm="voting")
        ]
        with observability.observe(root_name="serve-test") as session:
            EstimationService().serve(workload)
            snapshot = session.metrics.snapshot()
        counters = snapshot["counters"]
        assert counters["serve.requests"] == 5
        assert counters["serve.batched"] == 4
        assert counters["serve.fallbacks"] == 1
        assert counters["serve.fallbacks.algorithm"] == 1
        assert snapshot["gauges"]["serve.queue.depth"] == 0
        occupancy = snapshot["histograms"]["serve.batch.occupancy"]
        assert occupancy["count"] == 1 and occupancy["max"] == 4.0
        names = [span.name for span in session.export_spans()]
        assert "serve.batch.drain" in names
        drain = names.index("serve.batch.drain")
        children = [
            child.name
            for child in session.export_spans()[drain].children
        ]
        assert children.count("serve.request") == 5

    def test_cache_hit_rate_counters(self, fleet):
        requests, _ = fleet
        with observability.observe() as session:
            service = EstimationService()
            service.serve(requests[:2])
            service.serve(requests[:2])
            counters = session.metrics.snapshot()["counters"]
        assert counters["serve.cache.misses"] == 2
        assert counters["serve.cache.hits"] == 2

    def test_observability_is_bitwise_transparent(self, fleet):
        requests, references = fleet
        with observability.observe():
            responses = EstimationService().serve(requests[:3])
        for response, reference in zip(responses, references[:3]):
            assert results_bitwise_equal(response.result, reference)


class TestStats:
    def test_stats_reflect_the_paths_taken(self, fleet):
        requests, _ = fleet
        service = EstimationService()
        service.serve(
            list(requests[:3])
            + [EstimationRequest("vote", make_problem(62), algorithm="voting")]
        )
        stats = service.stats()
        assert stats["n_submitted"] == 4
        assert stats["n_completed"] == 4
        assert stats["n_batched"] == 3
        assert stats["n_serial"] == 1
        assert stats["n_rejected"] == 0
        assert stats["queue_depth"] == 0
        assert set(stats["breakers"]) == {"em-ext", "voting"}
