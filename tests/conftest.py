"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.core import DependencyMatrix, SensingProblem, SourceClaimMatrix, SourceParameters
from repro.synthetic import GeneratorConfig, generate_dataset


@pytest.fixture
def tiny_problem() -> SensingProblem:
    """The Figure 1 example: John follows Sally; Heather independent.

    Sources: 0 = John, 1 = Sally, 2 = Heather.
    Assertions: 0 = Main St congested, 1 = University Ave congested.
    John repeats Sally's Main St report (dependent) and independently
    reports University Ave.
    """
    sc = np.array(
        [
            [1, 1],  # John reported both
            [1, 0],  # Sally reported Main St
            [0, 1],  # Heather reported University Ave
        ]
    )
    dep = np.array(
        [
            [1, 0],  # John's Main St claim is dependent
            [0, 0],
            [0, 0],
        ]
    )
    truth = np.array([1, 1])
    return SensingProblem(
        claims=SourceClaimMatrix(sc), dependency=DependencyMatrix(dep), truth=truth
    )


@pytest.fixture
def small_params() -> SourceParameters:
    """A hand-built 3-source parameter set with informative sources."""
    return SourceParameters(
        a=np.array([0.7, 0.6, 0.5]),
        b=np.array([0.2, 0.3, 0.1]),
        f=np.array([0.6, 0.5, 0.4]),
        g=np.array([0.3, 0.25, 0.2]),
        z=0.6,
    )


@pytest.fixture
def synthetic_dataset():
    """A medium synthetic dataset with fixed seed."""
    return generate_dataset(GeneratorConfig(), seed=1234)


@pytest.fixture
def estimator_dataset():
    """A Section V-B style dataset (n = 50)."""
    return generate_dataset(GeneratorConfig.estimator_defaults(), seed=99)


@pytest.fixture
def rng() -> np.random.Generator:
    """A fixed-seed RNG."""
    return np.random.default_rng(7)
