"""Tests for the streaming dependency-aware estimator."""

import numpy as np
import pytest

from repro.core import SourceParameters
from repro.extensions import StreamingEMExt
from repro.synthetic import GeneratorConfig, SyntheticGenerator, generate_dataset
from repro.utils.errors import DataError, ValidationError


@pytest.fixture
def batch_stream():
    generator = SyntheticGenerator(GeneratorConfig(), seed=21)
    return generator.generate_many(8)


class TestConstruction:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_sources": 0},
            {"n_sources": 5, "decay": 0.0},
            {"n_sources": 5, "decay": 1.5},
            {"n_sources": 5, "inner_iterations": 0},
            {"n_sources": 5, "epsilon": 0.7},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValidationError):
            StreamingEMExt(**kwargs)

    def test_initial_parameters_size_checked(self):
        init = SourceParameters.from_scalars(3, a=0.6, b=0.3, f=0.5, g=0.4, z=0.5)
        with pytest.raises(ValidationError):
            StreamingEMExt(n_sources=5, initial_parameters=init)


class TestPartialFit:
    def test_batch_result_shape(self, batch_stream):
        stream = StreamingEMExt(n_sources=20)
        result = stream.partial_fit(batch_stream[0].problem.without_truth())
        assert result.algorithm == "streaming-em-ext"
        assert result.scores.shape == (50,)
        assert stream.n_batches == 1

    def test_source_count_mismatch(self, batch_stream):
        stream = StreamingEMExt(n_sources=7)
        with pytest.raises(ValidationError):
            stream.partial_fit(batch_stream[0].problem.without_truth())

    def test_parameters_move_toward_truth(self, batch_stream):
        """After several batches the learned rates approach the oracle."""
        from repro.synthetic import empirical_parameters

        stream = StreamingEMExt(n_sources=20, decay=1.0)
        for dataset in batch_stream:
            stream.partial_fit(dataset.problem.without_truth())
        oracle = empirical_parameters(batch_stream[-1].problem)
        # Pooled comparison: the learned independent rates separate in
        # the same direction as the oracle's (a above b).
        assert stream.parameters.a.mean() > stream.parameters.b.mean()
        assert oracle.a.mean() > oracle.b.mean()

    def test_accuracy_improves_with_history(self, batch_stream):
        """Later batches benefit from accumulated source statistics."""
        stream = StreamingEMExt(n_sources=20, decay=1.0)
        accuracies = []
        for dataset in batch_stream:
            result = stream.partial_fit(dataset.problem.without_truth())
            accuracies.append(
                float((result.decisions == dataset.problem.truth).mean())
            )
        early = np.mean(accuracies[:2])
        late = np.mean(accuracies[-3:])
        assert late >= early - 0.05

    def test_decay_forgets_history(self, batch_stream):
        """With decay << 1, old batches stop influencing the parameters."""
        fast_forget = StreamingEMExt(n_sources=20, decay=0.1)
        remember = StreamingEMExt(n_sources=20, decay=1.0)
        for dataset in batch_stream[:4]:
            blind = dataset.problem.without_truth()
            fast_forget.partial_fit(blind)
            remember.partial_fit(blind)
        # Same final batch, different histories → different parameters.
        difference = fast_forget.parameters.max_difference(remember.parameters)
        assert difference > 0.005

    def test_deterministic(self, batch_stream):
        a = StreamingEMExt(n_sources=20)
        b = StreamingEMExt(n_sources=20)
        blind = batch_stream[0].problem.without_truth()
        np.testing.assert_array_equal(
            a.partial_fit(blind).scores, b.partial_fit(blind).scores
        )


class TestSeed:
    """Regression wall for the seed that used to be silently ignored."""

    def test_same_seed_is_bitwise_deterministic(self, batch_stream):
        a = StreamingEMExt(n_sources=20, seed=7)
        b = StreamingEMExt(n_sources=20, seed=7)
        for dataset in batch_stream[:2]:
            blind = dataset.problem.without_truth()
            ours = a.partial_fit(blind)
            theirs = b.partial_fit(blind)
            assert ours.scores.tobytes() == theirs.scores.tobytes()
        assert a.parameters.max_difference(b.parameters) == 0.0

    def test_different_seeds_decorrelate_cold_starts(self, batch_stream):
        blind = batch_stream[0].problem.without_truth()
        first = StreamingEMExt(n_sources=20, seed=7).partial_fit(blind)
        second = StreamingEMExt(n_sources=20, seed=8).partial_fit(blind)
        assert not np.array_equal(first.scores, second.scores)

    def test_seed_none_preserves_the_historical_cold_start(self, batch_stream):
        blind = batch_stream[0].problem.without_truth()
        unseeded = StreamingEMExt(n_sources=20).partial_fit(blind)
        explicit_none = StreamingEMExt(n_sources=20, seed=None).partial_fit(
            blind
        )
        seeded = StreamingEMExt(n_sources=20, seed=7).partial_fit(blind)
        assert unseeded.scores.tobytes() == explicit_none.scores.tobytes()
        assert not np.array_equal(unseeded.scores, seeded.scores)

    def test_jitter_only_touches_the_first_batch(self, batch_stream):
        """From batch 2 on, the posterior comes from the learned
        parameters — the seed's influence flows only through state."""
        warm = StreamingEMExt(n_sources=20, seed=7)
        warm.partial_fit(batch_stream[0].problem.without_truth())
        parameters = warm.parameters
        continued = StreamingEMExt(
            n_sources=20, seed=12345, initial_parameters=parameters
        )
        continued._stats = warm._stats.copy()
        continued.n_batches = warm.n_batches
        reference = StreamingEMExt(
            n_sources=20, seed=7, initial_parameters=parameters
        )
        reference._stats = warm._stats.copy()
        reference.n_batches = warm.n_batches
        blind = batch_stream[1].problem.without_truth()
        assert (
            continued.partial_fit(blind).scores.tobytes()
            == reference.partial_fit(blind).scores.tobytes()
        )


class TestReporting:
    """``converged``/``n_iterations`` must describe what actually ran."""

    def test_tight_budget_reports_not_converged(self, batch_stream):
        stream = StreamingEMExt(n_sources=20, inner_iterations=3)
        result = stream.partial_fit(batch_stream[0].problem.without_truth())
        assert result.n_iterations == 3
        assert result.converged is False

    def test_ample_budget_reports_actual_iteration_count(self, batch_stream):
        stream = StreamingEMExt(n_sources=20, inner_iterations=300)
        result = stream.partial_fit(batch_stream[0].problem.without_truth())
        assert result.converged is True
        assert 1 <= result.n_iterations < 300

    def test_failed_batch_leaves_no_report_behind(self, batch_stream):
        stream = StreamingEMExt(n_sources=20)
        with pytest.raises(ValidationError):
            stream.partial_fit(
                generate_dataset(
                    GeneratorConfig(n_sources=5, n_assertions=10), seed=1
                ).problem.without_truth()
            )
        assert stream.n_batches == 0


class TestRollback:
    def _poisoned_partial_fit(self, stream, batch, monkeypatch):
        """Fail the update after the posterior loop, mid-commit."""
        monkeypatch.setattr(
            SourceParameters, "is_finite", lambda self: False
        )
        with pytest.raises(DataError, match="non-finite parameters"):
            stream.partial_fit(batch)

    def test_midcommit_failure_restores_the_stream(
        self, batch_stream, monkeypatch
    ):
        stream = StreamingEMExt(n_sources=20)
        stream.partial_fit(batch_stream[0].problem.without_truth())
        parameters_before = stream.parameters
        rates_before = stream._stats.rates(
            stream.parameters, stream.epsilon
        )
        self._poisoned_partial_fit(
            stream, batch_stream[1].problem.without_truth(), monkeypatch
        )
        monkeypatch.undo()
        assert stream.n_batches == 1
        assert stream.parameters is parameters_before
        rates_after = stream._stats.rates(stream.parameters, stream.epsilon)
        assert rates_before.max_difference(rates_after) == 0.0

    def test_stream_continues_identically_after_a_poisoned_batch(
        self, batch_stream, monkeypatch
    ):
        """A rolled-back batch must not perturb later estimates at all."""
        poisoned = StreamingEMExt(n_sources=20)
        clean = StreamingEMExt(n_sources=20)
        first = batch_stream[0].problem.without_truth()
        poisoned.partial_fit(first)
        clean.partial_fit(first)
        self._poisoned_partial_fit(
            poisoned, batch_stream[1].problem.without_truth(), monkeypatch
        )
        monkeypatch.undo()
        final = batch_stream[2].problem.without_truth()
        assert (
            poisoned.partial_fit(final).scores.tobytes()
            == clean.partial_fit(final).scores.tobytes()
        )


class TestDecayDrift:
    def test_fast_decay_tracks_a_regime_change(self):
        """Sources flip from reliable to unreliable mid-stream; the
        forgetting stream must follow the new regime more closely than
        the remember-everything stream."""

        def windows(p_indep_true, seeds):
            config = GeneratorConfig(
                n_sources=15, n_assertions=30, p_indep_true=p_indep_true
            )
            return [
                generate_dataset(config, seed=seed).problem.without_truth()
                for seed in seeds
            ]

        reliable = windows(0.9, [1, 2, 3])
        unreliable = windows(0.15, [4, 5, 6])
        fast = StreamingEMExt(n_sources=15, decay=0.3)
        slow = StreamingEMExt(n_sources=15, decay=1.0)
        for window in reliable + unreliable:
            fast.partial_fit(window)
            slow.partial_fit(window)

        def separation(stream):
            # a - b: positive when the stream still believes sources
            # assert true claims more readily than false ones.
            return float(
                stream.parameters.a.mean() - stream.parameters.b.mean()
            )

        # Both streams are fully deterministic, so a strict inequality
        # is a stable regression anchor: discounting the reliable phase
        # pulls the separation further toward the unreliable regime.
        assert separation(fast) < separation(slow)
