"""Tests for the streaming dependency-aware estimator."""

import numpy as np
import pytest

from repro.core import SourceParameters
from repro.extensions import StreamingEMExt
from repro.synthetic import GeneratorConfig, SyntheticGenerator
from repro.utils.errors import ValidationError


@pytest.fixture
def batch_stream():
    generator = SyntheticGenerator(GeneratorConfig(), seed=21)
    return generator.generate_many(8)


class TestConstruction:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_sources": 0},
            {"n_sources": 5, "decay": 0.0},
            {"n_sources": 5, "decay": 1.5},
            {"n_sources": 5, "inner_iterations": 0},
            {"n_sources": 5, "epsilon": 0.7},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValidationError):
            StreamingEMExt(**kwargs)

    def test_initial_parameters_size_checked(self):
        init = SourceParameters.from_scalars(3, a=0.6, b=0.3, f=0.5, g=0.4, z=0.5)
        with pytest.raises(ValidationError):
            StreamingEMExt(n_sources=5, initial_parameters=init)


class TestPartialFit:
    def test_batch_result_shape(self, batch_stream):
        stream = StreamingEMExt(n_sources=20)
        result = stream.partial_fit(batch_stream[0].problem.without_truth())
        assert result.algorithm == "streaming-em-ext"
        assert result.scores.shape == (50,)
        assert stream.n_batches == 1

    def test_source_count_mismatch(self, batch_stream):
        stream = StreamingEMExt(n_sources=7)
        with pytest.raises(ValidationError):
            stream.partial_fit(batch_stream[0].problem.without_truth())

    def test_parameters_move_toward_truth(self, batch_stream):
        """After several batches the learned rates approach the oracle."""
        from repro.synthetic import empirical_parameters

        stream = StreamingEMExt(n_sources=20, decay=1.0)
        for dataset in batch_stream:
            stream.partial_fit(dataset.problem.without_truth())
        oracle = empirical_parameters(batch_stream[-1].problem)
        # Pooled comparison: the learned independent rates separate in
        # the same direction as the oracle's (a above b).
        assert stream.parameters.a.mean() > stream.parameters.b.mean()
        assert oracle.a.mean() > oracle.b.mean()

    def test_accuracy_improves_with_history(self, batch_stream):
        """Later batches benefit from accumulated source statistics."""
        stream = StreamingEMExt(n_sources=20, decay=1.0)
        accuracies = []
        for dataset in batch_stream:
            result = stream.partial_fit(dataset.problem.without_truth())
            accuracies.append(
                float((result.decisions == dataset.problem.truth).mean())
            )
        early = np.mean(accuracies[:2])
        late = np.mean(accuracies[-3:])
        assert late >= early - 0.05

    def test_decay_forgets_history(self, batch_stream):
        """With decay << 1, old batches stop influencing the parameters."""
        fast_forget = StreamingEMExt(n_sources=20, decay=0.1)
        remember = StreamingEMExt(n_sources=20, decay=1.0)
        for dataset in batch_stream[:4]:
            blind = dataset.problem.without_truth()
            fast_forget.partial_fit(blind)
            remember.partial_fit(blind)
        # Same final batch, different histories → different parameters.
        difference = fast_forget.parameters.max_difference(remember.parameters)
        assert difference > 0.005

    def test_deterministic(self, batch_stream):
        a = StreamingEMExt(n_sources=20)
        b = StreamingEMExt(n_sources=20)
        blind = batch_stream[0].problem.without_truth()
        np.testing.assert_array_equal(
            a.partial_fit(blind).scores, b.partial_fit(blind).scores
        )
