"""Tests for the command-line interface."""


import pytest

from repro.cli import main
from repro.io import load_problem, load_result, load_tweets


@pytest.fixture
def problem_file(tmp_path):
    path = tmp_path / "problem.json"
    code = main(
        [
            "generate", "--out", str(path), "--seed", "3",
            "--n-sources", "12", "--n-assertions", "20", "--with-truth",
        ]
    )
    assert code == 0
    return path


class TestGenerate:
    def test_writes_problem(self, problem_file):
        problem = load_problem(problem_file)
        assert problem.n_sources == 12
        assert problem.n_assertions == 20
        assert problem.has_truth

    def test_without_truth(self, tmp_path):
        path = tmp_path / "blind.json"
        assert main(["generate", "--out", str(path), "--seed", "1"]) == 0
        assert not load_problem(path).has_truth

    def test_fixed_trees(self, tmp_path, capsys):
        path = tmp_path / "p.json"
        code = main(
            ["generate", "--out", str(path), "--seed", "1", "--n-trees", "12",
             "--n-sources", "12"]
        )
        assert code == 0
        problem = load_problem(path)
        assert problem.dependency.dependent_fraction == 0.0

    def test_deterministic(self, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        main(["generate", "--out", str(a), "--seed", "9"])
        main(["generate", "--out", str(b), "--seed", "9"])
        assert a.read_bytes() == b.read_bytes()


class TestEstimate:
    def test_estimate_and_save(self, problem_file, tmp_path, capsys):
        out = tmp_path / "result.json"
        code = main(
            ["estimate", "--problem", str(problem_file), "--out", str(out),
             "--algorithm", "em-ext", "--top", "3"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "em-ext" in output
        result = load_result(out)
        assert result.n_assertions == 20

    def test_heuristic_algorithm(self, problem_file, capsys):
        assert main(
            ["estimate", "--problem", str(problem_file), "--algorithm", "voting"]
        ) == 0
        assert "voting" in capsys.readouterr().out

    def test_missing_file(self, tmp_path, capsys):
        code = main(["estimate", "--problem", str(tmp_path / "missing.json")])
        assert code == 1

    def test_batched_restarts_match_serial(self, problem_file, tmp_path):
        """--batch is a pure execution-mode switch: identical output."""
        serial_out = tmp_path / "serial.json"
        batched_out = tmp_path / "batched.json"
        base = [
            "estimate", "--problem", str(problem_file),
            "--algorithm", "em-ext", "--seed", "7", "--restarts", "4",
        ]
        assert main(base + ["--out", str(serial_out)]) == 0
        assert main(base + ["--batch", "--out", str(batched_out)]) == 0
        serial = load_result(serial_out)
        batched = load_result(batched_out)
        assert serial.scores.tolist() == batched.scores.tolist()
        assert serial.log_likelihood == batched.log_likelihood

    def test_batch_flag_ignored_for_other_algorithms(self, problem_file, capsys):
        code = main(
            ["estimate", "--problem", str(problem_file),
             "--algorithm", "voting", "--batch"]
        )
        assert code == 0
        assert "apply to em-ext only" in capsys.readouterr().err


class TestBound:
    def test_exact_bound(self, problem_file, capsys):
        assert main(["bound", "--problem", str(problem_file), "--method", "exact"]) == 0
        output = capsys.readouterr().out
        assert "exact bound" in output
        assert "optimal accuracy ceiling" in output

    def test_bhattacharyya(self, problem_file, capsys):
        code = main(
            ["bound", "--problem", str(problem_file), "--method", "bhattacharyya"]
        )
        assert code == 0
        assert "bracket" in capsys.readouterr().out

    def test_requires_truth(self, tmp_path, capsys):
        path = tmp_path / "blind.json"
        main(["generate", "--out", str(path), "--seed", "1"])
        code = main(["bound", "--problem", str(path)])
        assert code == 2
        assert "truth" in capsys.readouterr().err


class TestSimulate:
    def test_writes_outputs(self, tmp_path, capsys):
        tweets_path = tmp_path / "tweets.jsonl"
        problem_path = tmp_path / "eval.json"
        code = main(
            ["simulate", "--dataset", "kirkuk", "--scale", "0.02", "--seed", "1",
             "--tweets-out", str(tweets_path), "--problem-out", str(problem_path)]
        )
        assert code == 0
        assert len(load_tweets(tweets_path)) > 0
        assert load_problem(problem_path).has_truth

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--dataset", "moonbase"])


class TestExperiment:
    def test_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        assert "0.26980433" in capsys.readouterr().out

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])


class TestObservabilityFlags:
    def test_experiment_writes_trace_and_metrics(self, tmp_path, capsys):
        import json

        from repro import observability
        from repro.observability import METRICS_SCHEMA, TRACE_SCHEMA

        trace_path = tmp_path / "spans.json"
        metrics_path = tmp_path / "metrics.json"
        code = main(
            ["experiment", "table1",
             "--trace-out", str(trace_path),
             "--metrics-out", str(metrics_path)]
        )
        assert code == 0
        # The session must not leak past the command.
        assert not observability.enabled()
        captured = capsys.readouterr()
        assert "0.26980433" in captured.out
        assert "hit rate" in captured.err
        trace = json.loads(trace_path.read_text())
        assert trace["schema"] == TRACE_SCHEMA
        assert trace["root"]["name"] == "repro.experiment"
        assert trace["root"]["end"] is not None
        metrics = json.loads(metrics_path.read_text())
        assert metrics["schema"] == METRICS_SCHEMA
        assert "kernels.params_cache.hit_rate" in metrics["derived"]

    def test_bound_records_instrumented_kernels(self, problem_file, tmp_path):
        import json

        trace_path = tmp_path / "spans.json"
        metrics_path = tmp_path / "metrics.json"
        code = main(
            ["bound", "--problem", str(problem_file), "--method", "exact",
             "--trace-out", str(trace_path),
             "--metrics-out", str(metrics_path)]
        )
        assert code == 0
        metrics = json.loads(metrics_path.read_text())
        assert metrics["counters"]["kernels.enumeration.patterns"] > 0
        trace = json.loads(trace_path.read_text())
        names = {child["name"] for child in trace["root"]["children"]}
        assert "bound.exact" in names

    def test_estimate_profile_out(self, problem_file, tmp_path):
        profile_path = tmp_path / "profile.txt"
        code = main(
            ["estimate", "--problem", str(problem_file),
             "--algorithm", "em-ext",
             "--profile-out", str(profile_path)]
        )
        assert code == 0
        assert "function calls" in profile_path.read_text()

    def test_flags_default_to_off(self, capsys):
        assert main(["experiment", "table1"]) == 0
        assert capsys.readouterr().err == ""


class TestServe:
    def _trace(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        code = main(
            ["serve", "--generate-trace", str(path), "--requests", "6",
             "--distinct", "3", "--seed", "4",
             "--n-sources", "10", "--n-assertions", "12"]
        )
        assert code == 0
        return path

    def test_requires_an_action(self, capsys):
        assert main(["serve"]) == 2
        assert "generate-trace" in capsys.readouterr().err

    def test_generate_trace_writes_jsonl(self, tmp_path, capsys):
        import json

        path = self._trace(tmp_path)
        capsys.readouterr()
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 7  # header + 6 requests
        header = json.loads(lines[0])
        assert header["schema"] == "repro.serve-trace/v1"

    def test_replay_verifies_and_writes_bench_json(self, tmp_path, capsys):
        import json

        trace = self._trace(tmp_path)
        bench = tmp_path / "BENCH_serve.json"
        code = main(
            ["serve", "--replay", str(trace), "--mode", "both",
             "--verify", "--bench-out", str(bench)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "verified 6 responses, 0 mismatched" in out
        assert "speedup" in out
        doc = json.loads(bench.read_text())
        assert doc["schema"] == "repro.bench-serve/v1"
        assert doc["n_requests"] == 6
        assert set(doc["rows"]) == {"batched", "serial"}
        assert doc["rows"]["batched"]["path_counts"]["batched"] == 6
        assert doc["parity"] == {"mismatches": 0, "verified": 6}
        assert doc["speedup"] > 0
        assert "machine" in doc

    def test_replay_batched_only(self, tmp_path, capsys):
        trace = self._trace(tmp_path)
        assert main(["serve", "--replay", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "batched:" in out and "serial:" not in out


class TestStream:
    def _windows(self, tmp_path, n=2):
        paths = []
        for index in range(n):
            path = tmp_path / f"window-{index}.json"
            code = main(
                ["generate", "--out", str(path), "--seed", str(30 + index),
                 "--n-sources", "12", "--n-assertions", "20"]
            )
            assert code == 0
            paths.append(str(path))
        return paths

    def test_streams_windows_in_order(self, tmp_path, capsys):
        windows = self._windows(tmp_path)
        code = main(["stream", "--windows"] + windows)
        assert code == 0
        out = capsys.readouterr().out
        assert "window 0:" in out and "window 1:" in out

    def test_writes_jsonl_snapshots(self, tmp_path, capsys):
        import json

        windows = self._windows(tmp_path)
        out_path = tmp_path / "stream.jsonl"
        code = main(
            ["stream", "--windows"] + windows
            + ["--out", str(out_path), "--seed", "5"]
        )
        assert code == 0
        records = [
            json.loads(line)
            for line in out_path.read_text().strip().splitlines()
        ]
        assert [record["window"] for record in records] == [0, 1]
        for record in records:
            assert record["n_assertions"] == 20
            assert len(record["decisions"]) == 20
            assert set(record["parameters"]) == {"a", "b", "f", "g", "z"}
            assert isinstance(record["converged"], bool)

    def test_seeded_stream_is_deterministic(self, tmp_path, capsys):
        windows = self._windows(tmp_path)
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        for out in (a, b):
            assert main(
                ["stream", "--windows"] + windows
                + ["--out", str(out), "--seed", "9"]
            ) == 0
        assert a.read_bytes() == b.read_bytes()
