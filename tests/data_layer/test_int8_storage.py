"""Satellite: CSR data arrays are int8, cast to float64 only at BLAS.

The historical sparse container stored float64 ones — pure waste, since
validation guarantees 0/1 content.  These tests pin the int8 contract
and the ~8x memory saving on a Table-III-sized fixture.
"""

import numpy as np
import pytest

from repro.data import CsrProblem, DenseProblem
from repro.engine.backends import CSRBackend, make_backend

TABLE_III_SHAPE = (38_844, 23_513)


def _table_iii_matrices(n_claims=41_000, n_dependent=120_000):
    from scipy import sparse

    n, m = TABLE_III_SHAPE
    rng = np.random.default_rng(7)

    def _random_csr(count, dtype):
        rows = rng.integers(0, n, size=count)
        cols = rng.integers(0, m, size=count)
        matrix = sparse.csr_matrix(
            (np.ones(count, dtype=dtype), (rows, cols)), shape=(n, m)
        )
        matrix.sum_duplicates()
        matrix.data[:] = 1
        return matrix

    return _random_csr(n_claims, np.int8), _random_csr(n_dependent, np.int8)


class TestInt8Storage:
    def test_data_arrays_are_int8(self):
        claims, dependency = _table_iii_matrices(n_claims=500, n_dependent=800)
        problem = CsrProblem(claims=claims, dependency=dependency)
        assert problem.claims.data.dtype == np.int8
        assert problem.dependency.data.dtype == np.int8

    def test_float64_input_is_compacted_to_int8(self):
        from scipy import sparse

        claims = sparse.csr_matrix(np.eye(4, dtype=np.float64))
        problem = CsrProblem(claims=claims, dependency=claims.copy())
        assert problem.claims.data.dtype == np.int8

    def test_non_binary_data_is_rejected(self):
        from scipy import sparse

        bad = sparse.csr_matrix(np.array([[2.0, 0.0], [0.0, 1.0]]))
        from repro.utils.errors import ValidationError

        with pytest.raises(ValidationError, match="0/1"):
            CsrProblem(claims=bad, dependency=bad)

    def test_table_iii_nbytes_is_about_8x_below_float64(self):
        claims, dependency = _table_iii_matrices()
        problem = CsrProblem(claims=claims, dependency=dependency)
        int8_bytes = problem.claims.data.nbytes + problem.dependency.data.nbytes
        float64_bytes = 8 * (problem.claims.nnz + problem.dependency.nnz)
        assert int8_bytes * 8 == float64_bytes
        # And the whole CSR container is far below the dense footprint.
        n, m = TABLE_III_SHAPE
        total = sum(
            part.nbytes
            for matrix in (problem.claims, problem.dependency)
            for part in (matrix.data, matrix.indices, matrix.indptr)
        )
        assert total < 0.01 * (2 * n * m)

    def test_backend_casts_to_float64_at_the_blas_boundary(self):
        rng = np.random.default_rng(3)
        sc = (rng.random((6, 9)) < 0.5).astype(np.int8)
        dep = ((rng.random((6, 9)) < 0.3) & (sc == 1)).astype(np.int8)
        problem = DenseProblem(claims=sc, dependency=dep).csr_view()
        backend = make_backend(problem)
        assert isinstance(backend, CSRBackend)
        assert backend.dep.dtype == np.float64
        assert backend.sc_dep.dtype == np.float64
        assert backend.sc_indep.dtype == np.float64
        # Storage stays int8 — the cast is a copy, not a mutation.
        assert problem.claims.data.dtype == np.int8
