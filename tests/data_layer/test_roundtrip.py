"""Property tests: format conversions and serialisation are lossless.

``dense_view(csr_view(p)) == p`` must hold *exactly* — values, ids and
truth — for every valid problem, and both io modules must round-trip a
problem through disk without losing the ids (the historical sparse
container dropped them).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import CsrProblem, DenseProblem
from repro.io.serialization import load_problem, save_problem
from repro.io.sparse_io import load_sparse_problem, save_sparse_problem

SETTINGS = settings(max_examples=25, deadline=None)

dims = st.tuples(st.integers(1, 7), st.integers(1, 9))
seeds = st.integers(0, 2**32 - 1)
flags = st.booleans()


def _problem(n, m, seed, with_truth, with_ids) -> DenseProblem:
    rng = np.random.default_rng(seed)
    sc = (rng.random((n, m)) < 0.5).astype(np.int8)
    dep = ((rng.random((n, m)) < 0.4) & (sc == 1)).astype(np.int8)
    truth = (rng.random(m) < 0.5).astype(np.int8) if with_truth else None
    if with_ids:
        return DenseProblem.from_arrays(
            sc,
            dep,
            truth=truth,
            source_ids=[f"user-{seed % 97}-{i}" for i in range(n)],
            assertion_ids=[f"claim-{j}" for j in range(m)],
        )
    return DenseProblem(claims=sc, dependency=dep, truth=truth)


class TestFormatRoundTrip:
    @SETTINGS
    @given(dims=dims, seed=seeds, with_truth=flags, with_ids=flags)
    def test_dense_csr_dense_is_identity(self, dims, seed, with_truth, with_ids):
        problem = _problem(*dims, seed, with_truth, with_ids)
        assert problem.csr_view().dense_view() == problem

    @SETTINGS
    @given(dims=dims, seed=seeds, with_truth=flags, with_ids=flags)
    def test_csr_dense_csr_is_identity(self, dims, seed, with_truth, with_ids):
        csr = _problem(*dims, seed, with_truth, with_ids).csr_view()
        assert csr.dense_view().csr_view() == csr

    @SETTINGS
    @given(dims=dims, seed=seeds)
    def test_truth_and_ids_survive_exactly(self, dims, seed):
        problem = _problem(*dims, seed, with_truth=True, with_ids=True)
        back = problem.csr_view().dense_view()
        assert np.array_equal(back.truth, problem.truth)
        assert back.source_ids == problem.source_ids
        assert back.assertion_ids == problem.assertion_ids
        assert np.array_equal(back.claims.values, problem.claims.values)
        assert np.array_equal(back.dependency.values, problem.dependency.values)


class TestSerialisationRoundTrip:
    @SETTINGS
    @given(dims=dims, seed=seeds, with_truth=flags, with_ids=flags)
    def test_json_roundtrip(self, tmp_path_factory, dims, seed, with_truth, with_ids):
        problem = _problem(*dims, seed, with_truth, with_ids)
        path = tmp_path_factory.mktemp("json") / "problem.json"
        save_problem(problem, path)
        assert load_problem(path) == problem

    @SETTINGS
    @given(dims=dims, seed=seeds, with_truth=flags, with_ids=flags)
    def test_npz_roundtrip(self, tmp_path_factory, dims, seed, with_truth, with_ids):
        csr = _problem(*dims, seed, with_truth, with_ids).csr_view()
        path = tmp_path_factory.mktemp("npz") / "problem.npz"
        save_sparse_problem(csr, path)
        loaded = load_sparse_problem(path)
        assert loaded == csr
        assert loaded.claims.data.dtype == np.int8

    @SETTINGS
    @given(dims=dims, seed=seeds, with_truth=flags)
    def test_cross_format_io(self, tmp_path_factory, dims, seed, with_truth):
        """Dense problems can be written through the sparse writer and back."""
        problem = _problem(*dims, seed, with_truth, with_ids=True)
        path = tmp_path_factory.mktemp("cross") / "problem.npz"
        save_sparse_problem(problem, path)  # coerced to CSR internally
        assert load_sparse_problem(path).dense_view() == problem


class TestLegacyArchives:
    def test_archive_without_ids_loads_with_defaults(self, tmp_path):
        """Pre-data-layer archives carry no id arrays; load still works."""
        from scipy import sparse

        problem = _problem(3, 4, seed=5, with_truth=True, with_ids=False).csr_view()
        path = tmp_path / "legacy.npz"
        claims = problem.claims
        dependency = problem.dependency
        np.savez_compressed(
            path,
            magic=np.array("repro-sparse-problem-v1"),
            shape=np.array(claims.shape, dtype=np.int64),
            claims_indptr=claims.indptr,
            claims_indices=claims.indices,
            dependency_indptr=dependency.indptr,
            dependency_indices=dependency.indices,
            has_truth=np.array(True),
            truth=problem.truth,
        )
        loaded = load_sparse_problem(path)
        assert loaded == problem
        assert loaded.source_ids == ["S0", "S1", "S2"]
