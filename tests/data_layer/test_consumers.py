"""Acceptance wall: every consumer in the library accepts a CsrProblem.

The tentpole contract of the data layer — estimators, bounds, the
harness, fault injection, streaming, and the oracle all take a problem
in either storage format and produce results identical to the dense
path (coercion is lossless and the CSR backend casts to float64 at the
BLAS boundary).
"""

import numpy as np
import pytest

from repro.baselines import ALGORITHM_REGISTRY, make_fact_finder
from repro.bounds import GibbsConfig, exact_bound, gibbs_bound
from repro.bounds.analytic import bhattacharyya_bounds
from repro.bounds.cramer_rao import parameter_confidence
from repro.data import FORMAT_CSR, coerce_problem
from repro.eval import run_simulation
from repro.extensions import StreamingEMExt
from repro.network.dependency import dependency_summary
from repro.resilience import FaultInjector
from repro.resilience.checkpoint import simulation_fingerprint
from repro.synthetic import GeneratorConfig, empirical_parameters, generate_dataset
from repro.utils.errors import ValidationError


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(GeneratorConfig(n_sources=8, n_assertions=24, n_trees=(3, 4)), seed=11)


@pytest.fixture(scope="module")
def dense_problem(dataset):
    return dataset.problem


@pytest.fixture(scope="module")
def csr_problem(dense_problem):
    return dense_problem.csr_view()


class TestEstimators:
    @pytest.mark.parametrize("name", sorted(ALGORITHM_REGISTRY))
    def test_every_registered_algorithm_accepts_csr(
        self, name, dense_problem, csr_problem
    ):
        def _fit(problem):
            kwargs = {"seed": 0} if name in ("em", "em-ext", "em-social", "em-pooled") else {}
            return make_fact_finder(name, **kwargs).fit(problem.without_truth())

        dense_result = _fit(dense_problem)
        csr_result = _fit(csr_problem)
        np.testing.assert_array_equal(csr_result.decisions, dense_result.decisions)
        # em-ext runs natively on the CSR backend (different summation
        # order, same 1e-10 wall as tests/sparse); every other
        # algorithm coerces to dense and must match exactly.
        atol = 1e-10 if name == "em-ext" else 0.0
        np.testing.assert_allclose(
            csr_result.scores, dense_result.scores, rtol=0, atol=atol
        )


class TestBounds:
    def test_exact_bound_accepts_problem_in_either_format(
        self, dense_problem, csr_problem
    ):
        params = empirical_parameters(dense_problem).clamp(1e-4)
        dense_bound = exact_bound(dense_problem, params)
        csr_bound = exact_bound(csr_problem, params)
        assert csr_bound.total == dense_bound.total

    def test_gibbs_bound_accepts_csr(self, dense_problem, csr_problem):
        params = empirical_parameters(dense_problem).clamp(1e-4)
        config = GibbsConfig(min_sweeps=50, max_sweeps=100)
        dense_bound = gibbs_bound(dense_problem, params, config=config, seed=3)
        csr_bound = gibbs_bound(csr_problem, params, config=config, seed=3)
        assert csr_bound.total == dense_bound.total

    def test_bhattacharyya_accepts_csr(self, dense_problem, csr_problem):
        params = empirical_parameters(dense_problem).clamp(1e-4)
        assert bhattacharyya_bounds(csr_problem, params) == bhattacharyya_bounds(
            dense_problem, params
        )

    def test_parameter_confidence_accepts_csr(self, dense_problem, csr_problem):
        params = empirical_parameters(dense_problem).clamp(1e-4)
        posterior = np.full(dense_problem.n_assertions, 0.5)
        dense_ci = parameter_confidence(dense_problem, params, posterior)
        csr_ci = parameter_confidence(csr_problem, params, posterior)
        np.testing.assert_array_equal(
            csr_ci.standard_errors["a"], dense_ci.standard_errors["a"]
        )


class TestOracleAndSummary:
    def test_empirical_parameters_accepts_csr(self, dense_problem, csr_problem):
        dense_params = empirical_parameters(dense_problem)
        csr_params = empirical_parameters(csr_problem)
        np.testing.assert_array_equal(csr_params.a, dense_params.a)
        assert csr_params.z == dense_params.z

    def test_dependency_summary_matches_across_formats(
        self, dense_problem, csr_problem
    ):
        dense_summary = dependency_summary(dense_problem)
        csr_summary = dependency_summary(csr_problem)
        assert csr_summary == pytest.approx(dense_summary)


class TestHarness:
    def test_run_simulation_csr_matches_dense(self):
        config = GeneratorConfig(n_sources=6, n_assertions=16, n_trees=2)
        kwargs = dict(
            algorithms=("voting", "em-ext"),
            n_trials=2,
            seed=42,
            include_optimal=True,
            bound_config=GibbsConfig(min_sweeps=50, max_sweeps=100),
            exact_limit=10,
        )
        dense = run_simulation(config, **kwargs)
        csr = run_simulation(config, problem_format="csr", **kwargs)
        for name in dense.series:
            assert csr.series[name].accuracy == dense.series[name].accuracy

    def test_run_simulation_rejects_unknown_format(self):
        with pytest.raises(ValidationError, match="problem_format"):
            run_simulation(GeneratorConfig(), n_trials=1, problem_format="coo")

    def test_fingerprint_stable_for_dense_and_distinct_for_csr(self):
        config = GeneratorConfig(n_sources=6, n_assertions=16, n_trees=2)
        kwargs = dict(
            algorithms=["voting"], n_trials=2, seed=1, include_optimal=False
        )
        legacy = simulation_fingerprint(config, **kwargs)
        dense = simulation_fingerprint(config, problem_format="dense", **kwargs)
        csr = simulation_fingerprint(config, problem_format="csr", **kwargs)
        assert dense == legacy  # old checkpoints keep resuming
        assert csr != legacy
        assert csr["problem_format"] == "csr"


class TestFaultsAndStreaming:
    def test_fault_injectors_preserve_the_input_format(self, csr_problem):
        injector = FaultInjector(seed=0)
        flipped = injector.flip_claims(csr_problem, rate=0.1)
        assert flipped.format == FORMAT_CSR
        assert flipped.claims.data.dtype == np.int8
        byzantine = injector.byzantine_sources(csr_problem, fraction=0.25)
        assert byzantine.format == FORMAT_CSR

    def test_nan_poisoning_refuses_csr(self, csr_problem):
        injector = FaultInjector(seed=0)
        with pytest.raises(ValidationError, match="int8 CSR"):
            injector.poison_claims(csr_problem)
        with pytest.raises(ValidationError, match="int8 CSR"):
            injector.poison_dependency(csr_problem)

    def test_streaming_accepts_csr_batches(self, dense_problem, csr_problem):
        blind_dense = dense_problem.without_truth()
        blind_csr = csr_problem.without_truth()
        dense_result = StreamingEMExt(dense_problem.n_sources, seed=0).partial_fit(
            blind_dense
        )
        csr_result = StreamingEMExt(dense_problem.n_sources, seed=0).partial_fit(
            blind_csr
        )
        np.testing.assert_array_equal(csr_result.decisions, dense_result.decisions)


class TestCoercionInConsumers:
    def test_csr_requesting_consumer_gets_csr_from_dense(self, dense_problem):
        coerced = coerce_problem(dense_problem, needs=FORMAT_CSR)
        assert coerced.format == FORMAT_CSR
        assert coerced.dense_view() == dense_problem
