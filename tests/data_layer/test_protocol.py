"""Protocol conformance and coercion semantics of the data layer."""

import numpy as np
import pytest

from repro.data import (
    FORMATS,
    FORMAT_CSR,
    FORMAT_DENSE,
    CsrProblem,
    DenseProblem,
    Problem,
    SensingProblem,
    SparseSensingProblem,
    as_dependency_array,
    coerce_problem,
)
from repro.utils.errors import ValidationError


def _dense(n=4, m=6, seed=0, with_truth=True) -> DenseProblem:
    rng = np.random.default_rng(seed)
    sc = (rng.random((n, m)) < 0.5).astype(np.int8)
    dep = ((rng.random((n, m)) < 0.3) & (sc == 1)).astype(np.int8)
    truth = (rng.random(m) < 0.5).astype(np.int8) if with_truth else None
    return DenseProblem(claims=sc, dependency=dep, truth=truth)


class TestProtocol:
    def test_format_tags(self):
        assert FORMATS == (FORMAT_DENSE, FORMAT_CSR)
        problem = _dense()
        assert problem.format == FORMAT_DENSE
        assert problem.csr_view().format == FORMAT_CSR

    def test_both_adapters_satisfy_the_protocol(self):
        dense = _dense()
        assert isinstance(dense, Problem)
        assert isinstance(dense.csr_view(), Problem)

    def test_legacy_names_are_aliases(self):
        assert SensingProblem is DenseProblem
        assert SparseSensingProblem is CsrProblem

    def test_protocol_accessors_agree_across_formats(self):
        dense = _dense()
        csr = dense.csr_view()
        assert csr.n_sources == dense.n_sources
        assert csr.n_assertions == dense.n_assertions
        assert csr.n_claims == dense.n_claims
        assert csr.source_ids == dense.source_ids
        assert csr.assertion_ids == dense.assertion_ids
        assert csr.has_truth == dense.has_truth
        assert np.array_equal(csr.truth, dense.truth)
        assert csr.dependent_claim_fraction() == pytest.approx(
            dense.dependent_claim_fraction()
        )

    def test_without_truth_keeps_ids_in_both_formats(self):
        dense = _dense()
        assert dense.without_truth().source_ids == dense.source_ids
        csr = dense.csr_view().without_truth()
        assert not csr.has_truth
        assert csr.assertion_ids == dense.assertion_ids


class TestCoerceProblem:
    def test_noop_when_format_matches(self):
        dense = _dense()
        assert coerce_problem(dense, needs=FORMAT_DENSE) is dense
        csr = dense.csr_view()
        assert coerce_problem(csr, needs=(FORMAT_DENSE, FORMAT_CSR)) is csr

    def test_converts_to_first_listed_format(self):
        dense = _dense()
        assert coerce_problem(dense, needs=FORMAT_CSR).format == FORMAT_CSR
        csr = dense.csr_view()
        assert coerce_problem(csr, needs=FORMAT_DENSE) == dense

    def test_rejects_raw_arrays(self):
        with pytest.raises(ValidationError, match="expected a sensing problem"):
            coerce_problem(np.zeros((2, 2)), needs=FORMAT_DENSE)

    def test_rejects_unknown_format_tag(self):
        with pytest.raises(ValidationError, match="unknown problem format"):
            coerce_problem(_dense(), needs="coo")

    def test_rejects_empty_needs(self):
        with pytest.raises(ValidationError, match="at least one"):
            coerce_problem(_dense(), needs=())


class TestAsDependencyArray:
    def test_accepts_every_spelling(self):
        dense = _dense()
        expected = dense.dependency.values
        assert as_dependency_array(dense) is expected
        assert as_dependency_array(dense.dependency) is expected
        assert np.array_equal(as_dependency_array(dense.csr_view()), expected)
        assert np.array_equal(
            as_dependency_array(dense.csr_view().dependency), expected
        )
        assert np.array_equal(as_dependency_array(expected.tolist()), expected)
