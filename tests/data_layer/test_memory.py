"""The densification memory guard (no large allocation ever happens)."""

import numpy as np
import pytest

from repro.data import (
    BYTES_PER_DENSE_CELL,
    DEFAULT_DENSE_BUDGET_BYTES,
    CsrProblem,
    MemoryBudgetError,
    check_densify,
    coerce_problem,
    dense_budget,
    estimate_dense_bytes,
    get_dense_budget,
    set_dense_budget,
)
from repro.utils.errors import ReproError, ValidationError

#: The Paris Attack crawl's Table III shape — ~1.83 GB dense.
TABLE_III_SHAPE = (38_844, 23_513)


def _table_iii_problem(n_claims: int = 1000) -> CsrProblem:
    """A Table-III-shaped CSR problem with a sprinkle of claims."""
    from scipy import sparse

    n, m = TABLE_III_SHAPE
    rng = np.random.default_rng(0)
    rows = rng.integers(0, n, size=n_claims)
    cols = rng.integers(0, m, size=n_claims)
    data = np.ones(n_claims, dtype=np.int8)
    claims = sparse.csr_matrix((data, (rows, cols)), shape=(n, m))
    claims.sum_duplicates()
    claims.data[:] = 1
    dependency = sparse.csr_matrix((n, m), dtype=np.int8)
    return CsrProblem(claims=claims, dependency=dependency)


class TestBudgetArithmetic:
    def test_estimate_counts_both_matrices(self):
        assert estimate_dense_bytes(10, 20) == 2 * 10 * 20
        assert BYTES_PER_DENSE_CELL == 2

    def test_table_iii_exceeds_the_default_budget(self):
        required = estimate_dense_bytes(*TABLE_III_SHAPE)
        assert required > DEFAULT_DENSE_BUDGET_BYTES
        with pytest.raises(MemoryBudgetError) as excinfo:
            check_densify(*TABLE_III_SHAPE)
        assert excinfo.value.required_bytes == required
        assert excinfo.value.budget_bytes == get_dense_budget()

    def test_error_is_both_repro_and_memory_error(self):
        with pytest.raises(ReproError):
            check_densify(*TABLE_III_SHAPE)
        with pytest.raises(MemoryError):
            check_densify(*TABLE_III_SHAPE)

    def test_small_problems_pass(self):
        assert check_densify(100, 100) == 2 * 100 * 100


class TestBudgetConfiguration:
    def test_set_and_restore(self):
        previous = set_dense_budget(1234)
        try:
            assert get_dense_budget() == 1234
        finally:
            set_dense_budget(previous)
        assert get_dense_budget() == previous

    def test_context_manager_restores_on_exit(self):
        before = get_dense_budget()
        with dense_budget(999):
            assert get_dense_budget() == 999
            with pytest.raises(MemoryBudgetError):
                check_densify(100, 100)
        assert get_dense_budget() == before

    @pytest.mark.parametrize("bad", [0, -1, 1.5, "big", True])
    def test_rejects_invalid_budgets(self, bad):
        with pytest.raises(ValidationError):
            set_dense_budget(bad)


class TestGuardedDensification:
    def test_dense_view_refuses_table_iii(self):
        problem = _table_iii_problem()
        with pytest.raises(MemoryBudgetError):
            problem.dense_view()
        with pytest.raises(MemoryBudgetError):
            problem.to_dense()
        with pytest.raises(MemoryBudgetError):
            coerce_problem(problem, needs="dense")

    def test_explicit_budget_overrides_per_call(self):
        problem = _table_iii_problem()
        # A per-call budget below even a tiny problem's needs refuses...
        small = CsrProblem(
            claims=problem.claims[:5, :5],
            dependency=problem.dependency[:5, :5],
        )
        with pytest.raises(MemoryBudgetError):
            small.dense_view(budget=10)
        # ...and a generous one admits without touching the global.
        before = get_dense_budget()
        dense = small.dense_view(budget=10_000)
        assert dense.n_sources == 5
        assert get_dense_budget() == before
