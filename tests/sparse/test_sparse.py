"""Tests for the sparse substrate (problem, EM, extraction)."""

import numpy as np
import pytest

pytest.importorskip("scipy")

from repro.core import EMConfig, EMExtEstimator
from repro.datasets import simulate_dataset
from repro.network.dependency import extract_dependency
from repro.sparse import SparseEMExt, SparseSensingProblem, extract_dependency_sparse
from repro.synthetic import GeneratorConfig, generate_dataset
from repro.utils.errors import ValidationError


class TestSparseProblem:
    def test_from_dense_round_trip(self, tiny_problem):
        sparse_problem = SparseSensingProblem.from_dense(tiny_problem)
        assert sparse_problem.n_sources == 3
        assert sparse_problem.n_claims == 4
        dense = sparse_problem.to_dense()
        np.testing.assert_array_equal(dense.claims.values, tiny_problem.claims.values)
        np.testing.assert_array_equal(
            dense.dependency.values, tiny_problem.dependency.values
        )
        np.testing.assert_array_equal(dense.truth, tiny_problem.truth)

    def test_dependent_claim_fraction(self, tiny_problem):
        sparse_problem = SparseSensingProblem.from_dense(tiny_problem)
        assert sparse_problem.dependent_claim_fraction() == pytest.approx(
            tiny_problem.dependent_claim_fraction()
        )

    def test_shape_mismatch(self):
        from scipy import sparse

        with pytest.raises(ValidationError):
            SparseSensingProblem(
                claims=sparse.eye(3, format="csr"),
                dependency=sparse.eye(4, format="csr"),
            )

    def test_non_binary_rejected(self):
        from scipy import sparse

        bad = sparse.csr_matrix(np.array([[2.0, 0.0]]))
        with pytest.raises(ValidationError):
            SparseSensingProblem(claims=bad, dependency=bad * 0)

    def test_truth_validation(self, tiny_problem):
        sparse_problem = SparseSensingProblem.from_dense(tiny_problem)
        with pytest.raises(ValidationError):
            SparseSensingProblem(
                claims=sparse_problem.claims,
                dependency=sparse_problem.dependency,
                truth=np.array([1, 0, 1]),
            )

    def test_without_truth(self, tiny_problem):
        sparse_problem = SparseSensingProblem.from_dense(tiny_problem)
        assert not sparse_problem.without_truth().has_truth


class TestSparseEM:
    def test_matches_dense_estimator(self):
        """Sparse and dense EM agree on decisions and accuracy."""
        dataset = generate_dataset(GeneratorConfig.estimator_defaults(), seed=4)
        dense_blind = dataset.problem.without_truth()
        sparse_blind = SparseSensingProblem.from_dense(dataset.problem).without_truth()
        dense_result = EMExtEstimator(seed=0).fit(dense_blind)
        sparse_result = SparseEMExt().fit(sparse_blind)
        agreement = (dense_result.decisions == sparse_result.decisions).mean()
        assert agreement > 0.9
        dense_accuracy = (dense_result.decisions == dataset.problem.truth).mean()
        sparse_accuracy = (sparse_result.decisions == dataset.problem.truth).mean()
        assert abs(dense_accuracy - sparse_accuracy) < 0.08

    def test_posteriors_close_to_dense(self):
        dataset = generate_dataset(GeneratorConfig(), seed=9)
        dense_result = EMExtEstimator(seed=0).fit(dataset.problem.without_truth())
        sparse_result = SparseEMExt().fit(
            SparseSensingProblem.from_dense(dataset.problem).without_truth()
        )
        # Same staged initialisation and update equations → posteriors
        # land on the same fixed point.
        np.testing.assert_allclose(
            sparse_result.scores, dense_result.scores, atol=0.05
        )

    def test_random_init_rejected(self):
        with pytest.raises(ValidationError):
            SparseEMExt(EMConfig(init_strategy="random"))

    def test_support_init_runs(self, tiny_problem):
        sparse_problem = SparseSensingProblem.from_dense(tiny_problem).without_truth()
        result = SparseEMExt(EMConfig(init_strategy="support")).fit(sparse_problem)
        assert result.scores.shape == (2,)

    def test_smoothing_supported(self):
        dataset = generate_dataset(GeneratorConfig(), seed=2)
        sparse_blind = SparseSensingProblem.from_dense(dataset.problem).without_truth()
        result = SparseEMExt(EMConfig(smoothing=1.0)).fit(sparse_blind)
        assert np.isfinite(result.scores).all()

    def test_full_scale_crawl_runs(self):
        """The headline capability: a Table III-scale slice in seconds."""
        dataset = simulate_dataset("ukraine", scale=0.5, seed=0)
        evaluation = dataset.evaluation_slice()
        sparse_blind = SparseSensingProblem.from_dense(
            evaluation.problem
        ).without_truth()
        result = SparseEMExt(EMConfig(smoothing=1.0, max_iterations=60)).fit(
            sparse_blind
        )
        assert result.scores.shape == (evaluation.n_assertions,)
        assert np.isfinite(result.log_likelihood)


class TestSparseExtraction:
    @pytest.mark.parametrize("policy", ["direct", "transitive"])
    def test_matches_dense_extractor(self, policy):
        dataset = simulate_dataset("kirkuk", scale=0.04, seed=3)
        log = dataset.event_log()
        n_assertions = dataset.n_assertions
        dense_claims, dense_dep = extract_dependency(
            log, dataset.graph, n_assertions=n_assertions, policy=policy
        )
        sparse_problem = extract_dependency_sparse(
            log, dataset.graph, n_assertions=n_assertions, policy=policy
        )
        np.testing.assert_array_equal(
            np.asarray(sparse_problem.claims.todense()), dense_claims.values
        )
        np.testing.assert_array_equal(
            np.asarray(sparse_problem.dependency.todense()), dense_dep.values
        )

    def test_validation(self):
        from repro.network import EventLog, FollowGraph, Post

        graph = FollowGraph(1)
        log = EventLog(posts=[Post(post_id=0, source=4, assertion=0, time=1.0)])
        with pytest.raises(ValidationError):
            extract_dependency_sparse(log, graph, n_assertions=1)

    def test_truth_attached(self, tiny_problem):
        from repro.network import EventLog, FollowGraph, Post

        graph = FollowGraph.from_edges(2, [(0, 1)])
        log = EventLog(
            posts=[
                Post(post_id=0, source=1, assertion=0, time=1.0),
                Post(post_id=1, source=0, assertion=0, time=2.0),
            ]
        )
        problem = extract_dependency_sparse(
            log, graph, n_assertions=1, truth=np.array([1])
        )
        assert problem.has_truth
        assert problem.dependency[0, 0] == 1.0
