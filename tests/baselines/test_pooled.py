"""Tests for the pooled (homogeneous) EM ablation baseline."""

import numpy as np
import pytest

from repro.baselines import PooledEMExt, make_fact_finder
from repro.core import EMExtEstimator
from repro.synthetic import GeneratorConfig, generate_dataset
from repro.utils.errors import ValidationError


class TestConstruction:
    def test_registered(self):
        finder = make_fact_finder("em-pooled")
        assert isinstance(finder, PooledEMExt)

    @pytest.mark.parametrize(
        "kwargs",
        [{"max_iterations": 0}, {"tolerance": 0.0}, {"epsilon": 0.7}],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValidationError):
            PooledEMExt(**kwargs)


class TestFit:
    def test_parameters_are_homogeneous(self, synthetic_dataset):
        result = PooledEMExt().fit(synthetic_dataset.problem.without_truth())
        params = result.parameters
        for name in ("a", "b", "f", "g"):
            values = getattr(params, name)
            assert np.allclose(values, values[0]), name

    def test_deterministic(self, synthetic_dataset):
        blind = synthetic_dataset.problem.without_truth()
        a = PooledEMExt().fit(blind)
        b = PooledEMExt().fit(blind)
        np.testing.assert_array_equal(a.scores, b.scores)

    def test_recovers_homogeneous_population(self):
        """When sources really are identical, pooling is sufficient."""
        config = GeneratorConfig(
            n_sources=30, n_assertions=300, n_trees=30,
            p_on=0.6, p_indep_true=(0.7, 0.7), true_ratio=0.6,
        )
        dataset = generate_dataset(config, seed=1)
        result = PooledEMExt().fit(dataset.problem.without_truth())
        accuracy = (result.decisions == dataset.problem.truth).mean()
        assert accuracy > 0.85
        # The pooled rate lands on the true population rate.
        assert result.parameters.a[0] == pytest.approx(0.42, abs=0.05)

    def test_per_source_beats_pooled_on_heterogeneous_data(self):
        """With spread-out reliabilities, per-source modelling wins."""
        config = GeneratorConfig(
            n_sources=40, n_assertions=200, n_trees=40,
            p_indep_true=(0.45, 0.95),  # widely heterogeneous sources
        )
        per_source_accuracy = []
        pooled_accuracy = []
        for seed in range(4):
            dataset = generate_dataset(config, seed=seed)
            blind = dataset.problem.without_truth()
            truth = dataset.problem.truth
            ext = EMExtEstimator(seed=0).fit(blind)
            pooled = PooledEMExt().fit(blind)
            per_source_accuracy.append(float((ext.decisions == truth).mean()))
            pooled_accuracy.append(float((pooled.decisions == truth).mean()))
        assert np.mean(per_source_accuracy) > np.mean(pooled_accuracy)

    def test_convergence_flag(self, synthetic_dataset):
        result = PooledEMExt(max_iterations=500).fit(
            synthetic_dataset.problem.without_truth()
        )
        assert result.converged
