"""Tests for the heuristic baselines: Voting, Sums, Average.Log, TruthFinder."""

import numpy as np
import pytest

from repro.baselines import AverageLog, Sums, TruthFinder, Voting, threshold_decisions
from repro.core import SensingProblem
from repro.utils.errors import ValidationError


@pytest.fixture
def lopsided_problem():
    """Assertion 0 has three supporters, assertion 1 has one, 2 has none."""
    sc = np.array(
        [
            [1, 0, 0],
            [1, 0, 0],
            [1, 1, 0],
        ]
    )
    return SensingProblem.independent(sc)


class TestThresholdDecisions:
    def test_cuts_at_normalised_half(self):
        decisions = threshold_decisions(np.array([0.0, 10.0, 4.0, 6.0]))
        np.testing.assert_array_equal(decisions, [0, 1, 0, 1])

    def test_degenerate_scores_all_true(self):
        np.testing.assert_array_equal(
            threshold_decisions(np.array([3.0, 3.0])), [1, 1]
        )

    def test_empty(self):
        assert threshold_decisions(np.array([])).size == 0


class TestVoting:
    def test_scores_are_support_counts(self, lopsided_problem):
        result = Voting().fit(lopsided_problem)
        np.testing.assert_array_equal(result.scores, [3, 1, 0])

    def test_ranking(self, lopsided_problem):
        result = Voting().fit(lopsided_problem)
        np.testing.assert_array_equal(result.ranking(), [0, 1, 2])

    def test_ignores_dependency(self, tiny_problem):
        """Voting counts dependent claims at face value (its known flaw)."""
        result = Voting().fit(tiny_problem)
        np.testing.assert_array_equal(result.scores, [2, 2])


class TestSums:
    def test_favours_supported_assertions(self, lopsided_problem):
        result = Sums().fit(lopsided_problem)
        assert result.scores[0] > result.scores[1] > result.scores[2]

    def test_scores_normalised(self, lopsided_problem):
        result = Sums().fit(lopsided_problem)
        assert result.scores.max() == pytest.approx(1.0)

    def test_reports_iterations(self, lopsided_problem):
        result = Sums().fit(lopsided_problem)
        assert result.extras["n_iterations"] >= 1

    def test_trust_rewards_prolific_good_sources(self):
        sc = np.array(
            [
                [1, 1, 1, 0],  # claims three well-supported assertions
                [1, 1, 1, 0],
                [0, 0, 0, 1],  # claims a lonely one
            ]
        )
        result = Sums().fit(SensingProblem.independent(sc))
        trust = result.extras["trust"]
        assert trust[0] > trust[2]

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValidationError):
            Sums(max_iterations=0)
        with pytest.raises(ValidationError):
            Sums(tolerance=0.0)

    def test_empty_support_handled(self):
        sc = np.zeros((2, 3), dtype=int)
        result = Sums().fit(SensingProblem.independent(sc))
        np.testing.assert_array_equal(result.scores, 0.0)


class TestAverageLog:
    def test_single_claim_sources_get_zero_trust(self):
        sc = np.array([[1, 0], [0, 1]])
        result = AverageLog().fit(SensingProblem.independent(sc))
        np.testing.assert_allclose(result.extras["trust"], 0.0)

    def test_prolific_sources_outrank(self):
        sc = np.array(
            [
                [1, 1, 1, 1, 0],
                [1, 1, 1, 1, 0],
                [0, 0, 0, 0, 1],
            ]
        )
        result = AverageLog().fit(SensingProblem.independent(sc))
        assert result.scores[0] > result.scores[4]

    def test_algorithm_name(self):
        assert AverageLog().algorithm_name == "average-log"


class TestTruthFinder:
    def test_confidences_in_unit_interval(self, lopsided_problem):
        result = TruthFinder().fit(lopsided_problem)
        assert ((result.scores >= 0) & (result.scores <= 1)).all()

    def test_support_ordering(self, lopsided_problem):
        result = TruthFinder().fit(lopsided_problem)
        assert result.scores[0] > result.scores[1] > result.scores[2]

    def test_dampening_required_positive(self):
        with pytest.raises(ValidationError):
            TruthFinder(dampening=0.0)

    def test_initial_trust_validated(self):
        with pytest.raises(ValidationError):
            TruthFinder(initial_trust=1.5)

    def test_converges_quickly(self, lopsided_problem):
        result = TruthFinder().fit(lopsided_problem)
        assert result.extras["n_iterations"] < 100

    def test_full_trust_stays_finite(self):
        """A source whose every claim reaches confidence 1 must not blow up."""
        sc = np.array([[1], [1], [1]])
        result = TruthFinder(dampening=5.0).fit(SensingProblem.independent(sc))
        assert np.isfinite(result.scores).all()
        assert np.isfinite(result.extras["trust"]).all()
