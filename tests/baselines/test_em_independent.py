"""Tests for the EM (IPSN 2012) and EM-Social (IPSN 2014) baselines."""

import numpy as np
import pytest

from repro.baselines import EMIndependent, EMSocial, IndependentParameters
from repro.core import SensingProblem
from repro.synthetic import GeneratorConfig, generate_dataset
from repro.utils.errors import ValidationError


class TestIndependentParameters:
    def test_clamp(self):
        params = IndependentParameters(
            t=np.array([0.0, 1.0]), b=np.array([0.5, 0.5]), z=1.0
        ).clamp(0.01)
        assert params.t.min() == pytest.approx(0.01)
        assert params.z == pytest.approx(0.99)

    def test_max_difference(self):
        a = IndependentParameters(t=np.array([0.5]), b=np.array([0.5]), z=0.5)
        b = IndependentParameters(t=np.array([0.9]), b=np.array([0.5]), z=0.5)
        assert a.max_difference(b) == pytest.approx(0.4)


class TestEMIndependent:
    def test_basic_fit(self, synthetic_dataset):
        result = EMIndependent(seed=0).fit(synthetic_dataset.problem.without_truth())
        assert result.algorithm == "em"
        assert ((result.scores >= 0) & (result.scores <= 1)).all()
        assert result.n_iterations >= 1

    def test_deterministic(self, synthetic_dataset):
        blind = synthetic_dataset.problem.without_truth()
        a = EMIndependent(seed=1).fit(blind)
        b = EMIndependent(seed=1).fit(blind)
        np.testing.assert_array_equal(a.scores, b.scores)

    def test_recovers_truth_on_rich_data(self):
        dataset = generate_dataset(
            GeneratorConfig(n_sources=40, n_assertions=400, n_trees=40), seed=5
        )
        result = EMIndependent(seed=0).fit(dataset.problem.without_truth())
        assert (result.decisions == dataset.problem.truth).mean() > 0.85

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValidationError):
            EMIndependent(max_iterations=0)
        with pytest.raises(ValidationError):
            EMIndependent(tolerance=0.0)
        with pytest.raises(ValidationError):
            EMIndependent(epsilon=0.6)
        with pytest.raises(ValidationError):
            EMIndependent(n_restarts=0)
        with pytest.raises(ValidationError):
            EMIndependent(init_strategy="bogus")
        with pytest.raises(ValidationError):
            EMIndependent(smoothing=-0.5)

    def test_monotone_likelihood(self, synthetic_dataset):
        result = EMIndependent(init_strategy="random", seed=3).fit(
            synthetic_dataset.problem.without_truth()
        )
        diffs = np.diff(result.trace.log_likelihoods)
        assert (diffs >= -1e-6).all()

    def test_ignores_dependency_matrix(self, synthetic_dataset):
        """EM must give identical output with and without D (it ignores it)."""
        problem = synthetic_dataset.problem
        stripped = SensingProblem.independent(problem.claims.values)
        with_dep = EMIndependent(seed=0).fit(problem.without_truth())
        without_dep = EMIndependent(seed=0).fit(stripped)
        np.testing.assert_allclose(with_dep.scores, without_dep.scores)


class TestEMSocial:
    def test_basic_fit(self, synthetic_dataset):
        result = EMSocial(seed=0).fit(synthetic_dataset.problem.without_truth())
        assert result.algorithm == "em-social"
        assert ((result.scores >= 0) & (result.scores <= 1)).all()

    def test_dependent_cells_do_not_matter(self, synthetic_dataset):
        """Flipping claims inside dependent cells must not change EM-Social."""
        problem = synthetic_dataset.problem
        sc = problem.claims.values.copy()
        dep = problem.dependency.values
        flipped = sc.copy()
        flipped[dep == 1] = 1 - flipped[dep == 1]
        original = EMSocial(seed=0).fit(
            SensingProblem(sc, dep)
        )
        modified = EMSocial(seed=0).fit(SensingProblem(flipped, dep))
        np.testing.assert_allclose(original.scores, modified.scores)

    def test_equals_em_when_no_dependencies(self):
        sc = np.array([[1, 0, 1], [0, 1, 1], [1, 1, 0]])
        problem = SensingProblem.independent(sc)
        em = EMIndependent(seed=0).fit(problem)
        social = EMSocial(seed=0).fit(problem)
        np.testing.assert_allclose(em.scores, social.scores)

    def test_fully_dependent_source_is_neutral(self):
        """A source whose every cell is dependent contributes nothing."""
        sc = np.array([[1, 1], [1, 0], [0, 1]])
        dep_without = np.zeros((3, 2), dtype=int)
        dep_with = dep_without.copy()
        dep_with[0, :] = 1  # source 0 fully dependent
        sc_dropped = sc.copy()
        sc_dropped[0, :] = 0
        masked = EMSocial(seed=0).fit(SensingProblem(sc, dep_with))
        # Compare with removing source 0 entirely.
        removed = EMSocial(seed=0).fit(
            SensingProblem(sc[1:], dep_without[1:])
        )
        np.testing.assert_allclose(masked.scores, removed.scores, atol=1e-6)
