"""Tests for the algorithm registry."""

import pytest

from repro.baselines import (
    ALGORITHM_REGISTRY,
    EMPIRICAL_ALGORITHMS,
    SIMULATION_ALGORITHMS,
    make_fact_finder,
)
from repro.utils.errors import ValidationError


def test_registry_covers_empirical_algorithms():
    for name in EMPIRICAL_ALGORITHMS:
        assert name in ALGORITHM_REGISTRY


def test_registry_covers_simulation_algorithms():
    for name in SIMULATION_ALGORITHMS:
        assert name in ALGORITHM_REGISTRY


def test_seven_empirical_algorithms():
    assert len(EMPIRICAL_ALGORITHMS) == 7
    assert EMPIRICAL_ALGORITHMS[-1] == "em-ext"


def test_make_fact_finder_instantiates_all(synthetic_dataset):
    blind = synthetic_dataset.problem.without_truth()
    for name in EMPIRICAL_ALGORITHMS:
        kwargs = {"seed": 0} if name in ("em", "em-social", "em-ext") else {}
        finder = make_fact_finder(name, **kwargs)
        result = finder.fit(blind)
        assert result.algorithm == name
        assert result.scores.size == blind.n_assertions


def test_unknown_algorithm():
    with pytest.raises(ValidationError):
        make_fact_finder("oracle")


def test_registry_names_match_classes():
    for name, cls in ALGORITHM_REGISTRY.items():
        assert cls.algorithm_name == name
