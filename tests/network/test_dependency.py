"""Tests for dependency-indicator extraction (the Figure 1 semantics)."""

import numpy as np
import pytest

from repro.network import EventLog, FollowGraph, Post, build_problem, dependency_summary, extract_dependency
from repro.utils.errors import ValidationError


def _figure1_setup():
    """John (0) follows Sally (1); Heather (2) independent.

    t1: Sally posts Main St (assertion 0); Heather posts University (1).
    t2: John posts Main St.  t3: John posts University.
    """
    graph = FollowGraph.from_edges(3, [(0, 1)])
    log = EventLog(
        posts=[
            Post(post_id=0, source=1, assertion=0, time=1.0),
            Post(post_id=1, source=2, assertion=1, time=1.0),
            Post(post_id=2, source=0, assertion=0, time=2.0),
            Post(post_id=3, source=0, assertion=1, time=3.0),
        ]
    )
    return graph, log


class TestFigure1Example:
    def test_claims(self):
        graph, log = _figure1_setup()
        claims, dependency = extract_dependency(log, graph, n_assertions=2)
        expected_sc = np.array([[1, 1], [1, 0], [0, 1]])
        np.testing.assert_array_equal(claims.values, expected_sc)

    def test_dependency_indicators(self):
        graph, log = _figure1_setup()
        _, dependency = extract_dependency(log, graph, n_assertions=2)
        # D_{1,1} = 1 (paper's indexing): John's Main St claim is
        # dependent; his University claim is not (he doesn't follow
        # Heather); Sally and Heather are independent.
        assert dependency[0, 0] == 1
        assert dependency[0, 1] == 0
        assert dependency[1, 0] == 0
        assert dependency[2, 1] == 0

    def test_non_claim_dependency(self):
        """Sally never posted University; John did, so had Sally posted
        it first the cell would be dependent.  But Sally follows nobody:
        all her non-claims are independent."""
        graph, log = _figure1_setup()
        _, dependency = extract_dependency(log, graph, n_assertions=2)
        assert dependency[1, 1] == 0


class TestPolicies:
    def test_transitive_policy(self):
        """A follows B follows C; C posts; A's later post is dependent
        only under the transitive policy."""
        graph = FollowGraph.from_edges(3, [(0, 1), (1, 2)])
        log = EventLog(
            posts=[
                Post(post_id=0, source=2, assertion=0, time=1.0),
                Post(post_id=1, source=0, assertion=0, time=2.0),
            ]
        )
        _, direct = extract_dependency(log, graph, n_assertions=1, policy="direct")
        _, transitive = extract_dependency(
            log, graph, n_assertions=1, policy="transitive"
        )
        assert direct[0, 0] == 0
        assert transitive[0, 0] == 1

    def test_unknown_policy(self):
        graph, log = _figure1_setup()
        with pytest.raises(ValidationError):
            extract_dependency(log, graph, n_assertions=2, policy="psychic")


class TestTiming:
    def test_simultaneous_report_is_independent(self):
        """Same-time reports are not 'earlier': no dependency."""
        graph = FollowGraph.from_edges(2, [(0, 1)])
        log = EventLog(
            posts=[
                Post(post_id=0, source=1, assertion=0, time=1.0),
                Post(post_id=1, source=0, assertion=0, time=1.0),
            ]
        )
        _, dependency = extract_dependency(log, graph, n_assertions=1)
        assert dependency[0, 0] == 0

    def test_follower_posting_first_is_independent(self):
        graph = FollowGraph.from_edges(2, [(0, 1)])
        log = EventLog(
            posts=[
                Post(post_id=0, source=0, assertion=0, time=1.0),
                Post(post_id=1, source=1, assertion=0, time=2.0),
            ]
        )
        _, dependency = extract_dependency(log, graph, n_assertions=1)
        assert dependency[0, 0] == 0
        # The followee doesn't follow back: also independent.
        assert dependency[1, 0] == 0


class TestValidation:
    def test_log_exceeding_graph(self):
        graph = FollowGraph(1)
        log = EventLog(posts=[Post(post_id=0, source=5, assertion=0, time=1.0)])
        with pytest.raises(ValidationError):
            extract_dependency(log, graph, n_assertions=1)

    def test_log_exceeding_assertions(self):
        graph, log = _figure1_setup()
        with pytest.raises(ValidationError):
            extract_dependency(log, graph, n_assertions=1)

    def test_silent_assertions_get_columns(self):
        graph, log = _figure1_setup()
        claims, dependency = extract_dependency(log, graph, n_assertions=5)
        assert claims.n_assertions == 5
        np.testing.assert_array_equal(claims.values[:, 2:], 0)


class TestHelpers:
    def test_build_problem(self):
        graph, log = _figure1_setup()
        problem = build_problem(log, graph, n_assertions=2, truth=np.array([1, 1]))
        assert problem.has_truth
        assert problem.n_sources == 3

    def test_dependency_summary(self):
        graph, log = _figure1_setup()
        problem = build_problem(log, graph, n_assertions=2)
        summary = dependency_summary(problem)
        assert summary["n_claims"] == 4
        assert summary["n_dependent_claims"] == 1
        assert summary["n_original_claims"] == 3
        assert summary["dependent_claim_fraction"] == pytest.approx(0.25)
