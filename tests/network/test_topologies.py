"""Dependency extraction on named influence topologies.

Each case pins the extractor's semantics on a small graph shape that
occurs in real social networks: chains, diamonds, stars, and mutual
follows.
"""

import numpy as np
import pytest

from repro.network import EventLog, FollowGraph, Post, extract_dependency


def _log(*posts):
    return EventLog(
        posts=[
            Post(post_id=k, source=s, assertion=a, time=t)
            for k, (s, a, t) in enumerate(posts)
        ]
    )


class TestChain:
    """0 follows 1 follows 2; information flows 2 → 1 → 0."""

    @pytest.fixture
    def graph(self):
        return FollowGraph.from_edges(3, [(0, 1), (1, 2)])

    def test_relay_direct(self, graph):
        log = _log((2, 0, 1.0), (1, 0, 2.0), (0, 0, 3.0))
        _, dependency = extract_dependency(log, graph, n_assertions=1)
        assert dependency[2, 0] == 0  # originator
        assert dependency[1, 0] == 1  # saw 2
        assert dependency[0, 0] == 1  # saw 1
        del dependency

    def test_skip_level_requires_transitive(self, graph):
        """2 posts; 1 stays silent; 0's post is only transitively dependent."""
        log = _log((2, 0, 1.0), (0, 0, 3.0))
        _, direct = extract_dependency(log, graph, n_assertions=1)
        _, transitive = extract_dependency(
            log, graph, n_assertions=1, policy="transitive"
        )
        assert direct[0, 0] == 0
        assert transitive[0, 0] == 1
        # The silent middle source was exposed either way.
        assert direct[1, 0] == 1


class TestDiamond:
    """3 follows 1 and 2; both follow 0."""

    @pytest.fixture
    def graph(self):
        return FollowGraph.from_edges(4, [(3, 1), (3, 2), (1, 0), (2, 0)])

    def test_two_path_exposure_counts_once(self, graph):
        log = _log((0, 0, 1.0), (1, 0, 2.0), (2, 0, 2.5), (3, 0, 3.0))
        claims, dependency = extract_dependency(log, graph, n_assertions=1)
        assert dependency[3, 0] == 1
        assert int(claims.values.sum()) == 4

    def test_earliest_ancestor_governs(self, graph):
        """3's claim lands between its two ancestors' claims: still
        dependent (1 was earlier)."""
        log = _log((1, 0, 1.0), (3, 0, 2.0), (2, 0, 3.0))
        _, dependency = extract_dependency(log, graph, n_assertions=1)
        assert dependency[3, 0] == 1


class TestStar:
    """Sources 1..4 all follow hub 0."""

    @pytest.fixture
    def graph(self):
        return FollowGraph.from_edges(5, [(k, 0) for k in range(1, 5)])

    def test_hub_broadcast_marks_all_followers(self, graph):
        log = _log((0, 0, 1.0), (1, 0, 2.0), (3, 0, 2.0))
        _, dependency = extract_dependency(log, graph, n_assertions=1)
        # Claimants after the hub: dependent claims.
        assert dependency[1, 0] == 1
        assert dependency[3, 0] == 1
        # Silent followers: dependent non-claims (had the opportunity).
        assert dependency[2, 0] == 1
        assert dependency[4, 0] == 1
        # The hub itself: independent.
        assert dependency[0, 0] == 0

    def test_hub_does_not_inherit_from_followers(self, graph):
        log = _log((1, 0, 1.0), (0, 0, 2.0))
        _, dependency = extract_dependency(log, graph, n_assertions=1)
        assert dependency[0, 0] == 0


class TestMutualFollows:
    """0 and 1 follow each other: whoever posts second is dependent."""

    @pytest.fixture
    def graph(self):
        return FollowGraph.from_edges(2, [(0, 1), (1, 0)])

    def test_second_poster_dependent(self, graph):
        log = _log((0, 0, 1.0), (1, 0, 2.0))
        _, dependency = extract_dependency(log, graph, n_assertions=1)
        assert dependency[0, 0] == 0
        assert dependency[1, 0] == 1

    def test_transitive_cycle_terminates(self, graph):
        log = _log((0, 0, 1.0), (1, 0, 2.0))
        _, dependency = extract_dependency(
            log, graph, n_assertions=1, policy="transitive"
        )
        assert dependency[1, 0] == 1


class TestMultiAssertionIndependence:
    def test_columns_are_independent(self):
        """Dependency on one assertion never leaks onto another."""
        graph = FollowGraph.from_edges(2, [(1, 0)])
        log = _log((0, 0, 1.0), (1, 0, 2.0), (1, 1, 3.0))
        _, dependency = extract_dependency(log, graph, n_assertions=2)
        assert dependency[1, 0] == 1
        assert dependency[1, 1] == 0
        expected = np.array([[0, 0], [1, 0]])
        np.testing.assert_array_equal(dependency.values, expected)
