"""Tests for the follow graph."""

import pytest

from repro.network import FollowGraph
from repro.utils.errors import ValidationError


class TestFollowGraph:
    def test_empty(self):
        graph = FollowGraph(3)
        assert graph.n_edges == 0
        assert graph.followees(0) == set()

    def test_add_and_query(self):
        graph = FollowGraph(3)
        graph.add_follow(0, 1)
        assert graph.follows(0, 1)
        assert not graph.follows(1, 0)
        assert graph.followees(0) == {1}
        assert graph.followers(1) == {0}

    def test_self_follow_rejected(self):
        graph = FollowGraph(2)
        with pytest.raises(ValidationError):
            graph.add_follow(1, 1)

    def test_out_of_range(self):
        graph = FollowGraph(2)
        with pytest.raises(ValidationError):
            graph.add_follow(0, 5)

    def test_from_edges(self):
        graph = FollowGraph.from_edges(3, [(0, 1), (1, 2)])
        assert graph.n_edges == 2

    def test_direct_ancestors(self):
        graph = FollowGraph.from_edges(3, [(0, 1), (1, 2)])
        assert graph.ancestors(0) == {1}

    def test_transitive_ancestors(self):
        graph = FollowGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert graph.ancestors(0, transitive=True) == {1, 2, 3}

    def test_transitive_handles_cycles(self):
        graph = FollowGraph.from_edges(3, [(0, 1), (1, 2), (2, 0)])
        assert graph.ancestors(0, transitive=True) == {1, 2}

    def test_edges_iteration_deterministic(self):
        graph = FollowGraph.from_edges(3, [(2, 0), (0, 2), (0, 1)])
        assert list(graph.edges()) == [(0, 1), (0, 2), (2, 0)]

    def test_duplicate_edges_idempotent(self):
        graph = FollowGraph(2)
        graph.add_follow(0, 1)
        graph.add_follow(0, 1)
        assert graph.n_edges == 1

    def test_out_degree_histogram(self):
        graph = FollowGraph.from_edges(3, [(0, 1), (0, 2)])
        assert graph.out_degree_histogram() == {0: 2, 2: 1}

    def test_to_networkx(self):
        graph = FollowGraph.from_edges(3, [(0, 1)])
        nx_graph = graph.to_networkx()
        assert nx_graph.number_of_nodes() == 3
        assert nx_graph.has_edge(0, 1)
