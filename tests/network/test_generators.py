"""Tests for follow-graph generators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import level_two_forest, preferential_attachment
from repro.utils.errors import ValidationError


class TestLevelTwoForest:
    def test_structure(self):
        forest = level_two_forest(10, 3, seed=0)
        assert forest.n_trees == 3
        assert forest.roots == [0, 1, 2]
        assert len(forest.parent) == 7

    def test_roots_follow_nobody(self):
        forest = level_two_forest(10, 3, seed=0)
        for root in forest.roots:
            assert forest.graph.followees(root) == set()

    def test_leaves_follow_exactly_one_root(self):
        forest = level_two_forest(12, 4, seed=1)
        for leaf, parent in forest.parent.items():
            assert forest.graph.followees(leaf) == {parent}
            assert parent in forest.roots

    def test_all_sources_independent_when_trees_equal_sources(self):
        forest = level_two_forest(5, 5, seed=0)
        assert forest.graph.n_edges == 0

    def test_single_tree(self):
        forest = level_two_forest(6, 1, seed=0)
        assert all(parent == 0 for parent in forest.parent.values())

    def test_leaves_of(self):
        forest = level_two_forest(8, 2, seed=3)
        all_leaves = sorted(forest.leaves_of(0) + forest.leaves_of(1))
        assert all_leaves == list(range(2, 8))

    def test_leaves_of_non_root(self):
        forest = level_two_forest(8, 2, seed=3)
        with pytest.raises(ValidationError):
            forest.leaves_of(7)

    def test_too_many_trees(self):
        with pytest.raises(ValidationError):
            level_two_forest(3, 5)

    def test_deterministic(self):
        a = level_two_forest(10, 3, seed=9)
        b = level_two_forest(10, 3, seed=9)
        assert a.parent == b.parent


class TestPreferentialAttachment:
    def test_connectivity(self):
        graph = preferential_attachment(50, links_per_source=2, seed=0)
        # Every non-initial source follows at least one account.
        for source in range(1, 50):
            assert len(graph.followees(source)) >= 1

    def test_heavy_tail(self):
        graph = preferential_attachment(300, links_per_source=2, seed=0)
        follower_counts = sorted(
            (len(graph.followers(s)) for s in range(300)), reverse=True
        )
        # The most-followed account dwarfs the median.
        assert follower_counts[0] >= 10 * max(follower_counts[150], 1)

    def test_no_self_follow(self):
        graph = preferential_attachment(30, seed=1)
        for follower, followee in graph.edges():
            assert follower != followee

    def test_deterministic(self):
        a = preferential_attachment(20, seed=2)
        b = preferential_attachment(20, seed=2)
        assert list(a.edges()) == list(b.edges())


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=30),
    seed=st.integers(min_value=0, max_value=100),
)
def test_forest_covers_every_source_once(n, seed):
    """Property: every source is exactly one of root or leaf."""
    n_trees = max(1, n // 3)
    forest = level_two_forest(n, n_trees, seed=seed)
    roots = set(forest.roots)
    leaves = set(forest.parent)
    assert roots | leaves == set(range(n))
    assert roots & leaves == set()
