"""Tests for posts and the event log."""

import numpy as np
import pytest

from repro.network import EventLog, Post
from repro.utils.errors import DataError, ValidationError


def _post(post_id, source, assertion, time, retweet_of=None):
    return Post(
        post_id=post_id, source=source, assertion=assertion, time=time,
        retweet_of=retweet_of,
    )


class TestPost:
    def test_is_retweet(self):
        assert not _post(0, 0, 0, 1.0).is_retweet
        assert _post(1, 0, 0, 2.0, retweet_of=0).is_retweet

    def test_negative_ids_rejected(self):
        with pytest.raises(ValidationError):
            _post(0, -1, 0, 1.0)

    def test_self_retweet_rejected(self):
        with pytest.raises(ValidationError):
            _post(3, 0, 0, 1.0, retweet_of=3)


class TestEventLog:
    def test_sorted_on_construction(self):
        log = EventLog(posts=[_post(1, 0, 0, 5.0), _post(0, 1, 1, 1.0)])
        assert [p.post_id for p in log] == [0, 1]

    def test_duplicate_ids_rejected(self):
        with pytest.raises(DataError):
            EventLog(posts=[_post(0, 0, 0, 1.0), _post(0, 1, 1, 2.0)])

    def test_retweet_of_unknown_rejected(self):
        with pytest.raises(DataError):
            EventLog(posts=[_post(1, 0, 0, 2.0, retweet_of=99)])

    def test_retweet_from_future_rejected(self):
        with pytest.raises(DataError):
            EventLog(
                posts=[_post(0, 0, 0, 5.0), _post(1, 1, 0, 1.0, retweet_of=0)]
            )

    def test_append_in_order(self):
        log = EventLog(posts=[_post(0, 0, 0, 1.0)])
        log.append(_post(1, 1, 0, 2.0, retweet_of=0))
        assert len(log) == 2

    def test_append_out_of_order_rejected(self):
        log = EventLog(posts=[_post(0, 0, 0, 5.0)])
        with pytest.raises(DataError):
            log.append(_post(1, 1, 0, 1.0))

    def test_append_duplicate_rejected(self):
        log = EventLog(posts=[_post(0, 0, 0, 1.0)])
        with pytest.raises(DataError):
            log.append(_post(0, 1, 0, 2.0))

    def test_counts(self):
        log = EventLog(
            posts=[_post(0, 0, 1, 1.0), _post(1, 2, 0, 2.0, retweet_of=0)]
        )
        assert log.n_sources == 3
        assert log.n_assertions == 2
        assert log.n_original_posts == 1

    def test_empty_counts(self):
        log = EventLog()
        assert log.n_sources == 0
        assert log.n_assertions == 0

    def test_first_report_times(self):
        log = EventLog(
            posts=[_post(0, 0, 0, 3.0), _post(1, 0, 0, 1.0), _post(2, 1, 1, 2.0)]
        )
        times = log.first_report_times(2, 2)
        assert times[0, 0] == 1.0  # earliest of the two reports
        assert times[1, 1] == 2.0
        assert np.isinf(times[0, 1])

    def test_first_report_times_out_of_bounds(self):
        log = EventLog(posts=[_post(0, 5, 0, 1.0)])
        with pytest.raises(DataError):
            log.first_report_times(2, 2)

    def test_to_claim_matrix(self):
        log = EventLog(posts=[_post(0, 0, 1, 1.0), _post(1, 1, 0, 2.0)])
        matrix = log.to_claim_matrix(2, 2)
        assert matrix[0, 1] == 1
        assert matrix[1, 0] == 1
        assert matrix.n_claims == 2

    def test_posts_by_source_and_assertion(self):
        log = EventLog(
            posts=[_post(0, 0, 0, 1.0), _post(1, 0, 1, 2.0), _post(2, 1, 0, 3.0)]
        )
        assert [p.post_id for p in log.posts_by_source(0)] == [0, 1]
        assert [p.post_id for p in log.posts_by_assertion(0)] == [0, 2]

    def test_merge(self):
        a = EventLog(posts=[_post(0, 0, 0, 1.0)])
        b = EventLog(posts=[_post(1, 1, 1, 0.5)])
        merged = EventLog.merge([a, b])
        assert [p.post_id for p in merged] == [1, 0]
