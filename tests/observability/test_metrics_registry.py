"""Unit tests for the metrics registry and its snapshot/merge algebra."""

import json

import pytest

from repro.observability import (
    METRICS_SCHEMA,
    MetricsRegistry,
    hit_rate,
    metrics_document,
    write_metrics_json,
)


class TestRegistry:
    def test_counters_accumulate(self):
        registry = MetricsRegistry()
        registry.increment("a")
        registry.increment("a", 4)
        registry.increment("b", 2)
        assert registry.counter("a") == 5
        assert registry.counter("b") == 2
        assert registry.counter("missing") == 0

    def test_gauges_last_write_wins(self):
        registry = MetricsRegistry()
        registry.set_gauge("g", 1.5)
        registry.set_gauge("g", -3)
        assert registry.snapshot()["gauges"]["g"] == -3

    def test_histograms_summarise(self):
        registry = MetricsRegistry()
        for value in (2.0, 8.0, 5.0):
            registry.observe("h", value)
        summary = registry.snapshot()["histograms"]["h"]
        assert summary == {"count": 3, "sum": 15.0, "min": 2.0, "max": 8.0}

    def test_len_and_clear(self):
        registry = MetricsRegistry()
        registry.increment("a")
        registry.set_gauge("g", 1)
        registry.observe("h", 1)
        assert len(registry) == 3
        registry.clear()
        assert len(registry) == 0
        assert registry.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }


class TestMerge:
    def test_merge_is_associative_accumulation(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.increment("c", 3)
        a.observe("h", 1.0)
        b.increment("c", 4)
        b.increment("only_b")
        b.observe("h", 9.0)
        b.set_gauge("g", 7)
        a.merge(b.snapshot())
        snap = a.snapshot()
        assert snap["counters"] == {"c": 7, "only_b": 1}
        assert snap["gauges"] == {"g": 7}
        assert snap["histograms"]["h"] == {
            "count": 2,
            "sum": 10.0,
            "min": 1.0,
            "max": 9.0,
        }

    def test_merge_order_of_two_workers_does_not_change_counters(self):
        w1, w2 = MetricsRegistry(), MetricsRegistry()
        w1.increment("n", 2)
        w1.observe("h", 3.0)
        w2.increment("n", 5)
        w2.observe("h", 1.0)
        forward, backward = MetricsRegistry(), MetricsRegistry()
        forward.merge(w1.snapshot())
        forward.merge(w2.snapshot())
        backward.merge(w2.snapshot())
        backward.merge(w1.snapshot())
        assert forward.snapshot() == backward.snapshot()


class TestDocuments:
    def test_hit_rate(self):
        registry = MetricsRegistry()
        assert hit_rate(registry.snapshot()) == 0.0
        registry.increment("kernels.params_cache.hits", 3)
        registry.increment("kernels.params_cache.misses", 1)
        assert hit_rate(registry.snapshot()) == pytest.approx(0.75)

    def test_metrics_document_schema_and_derived(self):
        registry = MetricsRegistry()
        registry.increment("kernels.params_cache.hits")
        registry.increment("kernels.params_cache.misses")
        document = metrics_document(registry.snapshot())
        assert document["schema"] == METRICS_SCHEMA
        assert document["derived"]["kernels.params_cache.hit_rate"] == 0.5
        assert document["counters"] == registry.snapshot()["counters"]

    def test_write_metrics_json_round_trips(self, tmp_path):
        registry = MetricsRegistry()
        registry.increment("c", 2)
        registry.observe("h", 4.0)
        path = tmp_path / "metrics.json"
        write_metrics_json(str(path), registry.snapshot())
        loaded = json.loads(path.read_text())
        assert loaded["schema"] == METRICS_SCHEMA
        assert loaded["counters"] == {"c": 2}
        assert loaded["histograms"]["h"]["count"] == 1
