"""The transparency wall: observability must be bitwise invisible.

For random problems and every estimator and bound backend, running with
an observability session active must produce results **bit-for-bit
identical** to running without one — same scores, same posteriors, same
bound values, same RNG-driven sampler output.  Every emitted span tree
must also be well-formed (single root, children nested inside same-pid
parent intervals, no negative durations, everything closed).

These are exact ``==`` comparisons on floats, the same discipline as
the serial-parity wall in ``tests/parallel/``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import observability
from repro.baselines import ALGORITHM_REGISTRY, make_fact_finder
from repro.bounds import (
    GibbsConfig,
    bhattacharyya_bounds,
    bound_cascade,
    exact_bound,
    gibbs_bound,
)
from repro.observability import validate_span_tree
from repro.synthetic import GeneratorConfig, empirical_parameters, generate_dataset

SETTINGS = settings(max_examples=25, deadline=None)
FAST_SETTINGS = settings(max_examples=10, deadline=None)

GIBBS_CONFIG = GibbsConfig(
    burn_in=20, min_sweeps=60, max_sweeps=200, check_interval=50
)

problem_seeds = st.integers(min_value=0, max_value=2**31 - 1)


def _dataset(seed, n_sources=6, n_assertions=14):
    config = GeneratorConfig(
        n_sources=n_sources, n_assertions=n_assertions, n_trees=(2, 3)
    )
    return generate_dataset(config, seed=seed)


def _finder(name, seed):
    """Construct one registered finder; only the EM family is seeded."""
    if name in ("em", "em-social", "em-ext", "em-pooled"):
        return make_fact_finder(name, seed=seed)
    return make_fact_finder(name)


def _observed(fn):
    """Run ``fn`` under a fresh session; return (result, finished root)."""
    with observability.observe() as session:
        result = fn()
    return result, session.finish()


def _assert_well_formed(root):
    problems = validate_span_tree(root)
    assert problems == [], problems


class TestEstimatorTransparency:
    @SETTINGS
    @given(seed=problem_seeds, algorithm=st.sampled_from(sorted(ALGORITHM_REGISTRY)))
    def test_every_estimator_is_bitwise_invariant(self, seed, algorithm):
        problem = _dataset(seed).problem.without_truth()

        def fit():
            return _finder(algorithm, seed).fit(problem)

        plain = fit()
        observed, root = _observed(fit)
        np.testing.assert_array_equal(plain.scores, observed.scores)
        np.testing.assert_array_equal(plain.decisions, observed.decisions)
        _assert_well_formed(root)


class TestBoundTransparency:
    @SETTINGS
    @given(seed=problem_seeds)
    def test_exact_bound_bitwise_invariant(self, seed):
        dataset = _dataset(seed)
        params = empirical_parameters(dataset.problem).clamp(1e-4)
        dependency = dataset.problem.dependency.values

        plain = exact_bound(dependency, params)
        observed, root = _observed(lambda: exact_bound(dependency, params))
        assert plain.total == observed.total
        assert plain.false_positive == observed.false_positive
        assert plain.false_negative == observed.false_negative
        _assert_well_formed(root)
        names = {c.name for c in root.children}
        assert "bound.exact" in names

    @FAST_SETTINGS
    @given(seed=problem_seeds)
    def test_gibbs_bound_bitwise_invariant(self, seed):
        dataset = _dataset(seed)
        params = empirical_parameters(dataset.problem).clamp(1e-4)
        dependency = dataset.problem.dependency.values

        def bound():
            return gibbs_bound(dependency, params, config=GIBBS_CONFIG, seed=seed)

        plain = bound()
        observed, root = _observed(bound)
        assert plain.total == observed.total
        assert plain.false_positive == observed.false_positive
        assert plain.false_negative == observed.false_negative
        assert plain.n_samples == observed.n_samples
        _assert_well_formed(root)

    @SETTINGS
    @given(seed=problem_seeds)
    def test_analytic_bracket_bitwise_invariant(self, seed):
        dataset = _dataset(seed)
        params = empirical_parameters(dataset.problem).clamp(1e-4)
        dependency = dataset.problem.dependency.values

        plain = bhattacharyya_bounds(dependency, params)
        observed, root = _observed(
            lambda: bhattacharyya_bounds(dependency, params)
        )
        assert plain == observed
        _assert_well_formed(root)

    @FAST_SETTINGS
    @given(seed=problem_seeds)
    def test_cascade_bitwise_invariant(self, seed):
        dataset = _dataset(seed)
        params = empirical_parameters(dataset.problem).clamp(1e-4)
        dependency = dataset.problem.dependency.values

        def cascade():
            return bound_cascade(dependency, params, seed=seed)

        plain = cascade()
        observed, root = _observed(cascade)
        assert plain.bound.total == observed.bound.total
        # Attempt timings are wall clock; everything else must match.
        assert plain.report.requested == observed.report.requested
        assert plain.report.tier == observed.report.tier
        assert [
            (a.tier, a.status, a.reason) for a in plain.report.attempts
        ] == [
            (a.tier, a.status, a.reason) for a in observed.report.attempts
        ]
        _assert_well_formed(root)
        names = {c.name for c in root.children}
        assert "bound.cascade" in names


class TestSpanTreeShape:
    def test_em_fit_span_tree_structure(self):
        problem = _dataset(3).problem.without_truth()
        _, root = _observed(lambda: make_fact_finder("em-ext", seed=3).fit(problem))
        _assert_well_formed(root)
        fits = [c for c in root.children if c.name == "em.fit"]
        assert fits, [c.name for c in root.children]
        runs = [c for c in fits[0].children if c.name == "em.run"]
        assert runs
        assert all(r.duration_seconds >= 0 for r in runs)

    def test_metrics_recorded_during_fit(self):
        problem = _dataset(4).problem.without_truth()
        with observability.observe() as session:
            make_fact_finder("em-ext", seed=4).fit(problem)
        counters = session.metrics.snapshot()["counters"]
        assert counters["em.iterations"] > 0
        assert counters["em.restarts"] > 0
        assert counters["kernels.params_cache.misses"] > 0
