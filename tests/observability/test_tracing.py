"""Unit tests for spans, the tracer, session plumbing and profiling."""

import json
import os

import pytest

from repro import observability
from repro.observability import (
    TRACE_SCHEMA,
    Span,
    Tracer,
    profile_stage,
    trace_document,
    validate_span_tree,
    write_trace_json,
)
from repro.utils.errors import ValidationError


class TestTracer:
    def test_single_root_and_nesting(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner", depth=1) as inner:
                assert tracer.current is inner
            assert tracer.current is outer
        root = tracer.finish()
        assert root.name == "session"
        assert [c.name for c in root.children] == ["outer"]
        assert [c.name for c in root.children[0].children] == ["inner"]
        assert root.children[0].children[0].attributes == {"depth": 1}
        assert validate_span_tree(root) == []

    def test_finish_is_idempotent(self):
        tracer = Tracer()
        first = tracer.finish()
        end = first.end
        assert tracer.finish().end == end

    def test_span_closed_even_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        root = tracer.finish()
        assert root.children[0].end is not None
        assert validate_span_tree(root) == []

    def test_graft_preserves_order_and_foreign_pid(self):
        worker = Tracer(root_name="worker")
        with worker.span("w1"):
            pass
        with worker.span("w2"):
            pass
        shipped = [
            Span.from_dict(child.to_dict())
            for child in worker.finish().children
        ]
        # Simulate a foreign process clock: same structure, alien pid.
        for span in shipped:
            span.pid = os.getpid() + 1
        parent = Tracer()
        with parent.span("consume"):
            parent.graft(shipped)
        root = parent.finish()
        consume = root.children[0]
        assert [c.name for c in consume.children] == ["w1", "w2"]
        # Foreign-pid children are exempt from interval containment.
        assert validate_span_tree(root) == []


class TestValidation:
    def test_detects_unclosed_and_negative_spans(self):
        root = Span(name="session", start=0.0, pid=1, end=10.0)
        root.children.append(Span(name="open", start=1.0, pid=1))
        root.children.append(Span(name="", start=1.0, pid=1, end=0.5))
        problems = validate_span_tree(root)
        assert any("never closed" in p for p in problems)
        assert any("negative duration" in p for p in problems)
        assert any("empty span name" in p for p in problems)

    def test_detects_child_escaping_parent_interval(self):
        root = Span(name="session", start=0.0, pid=1, end=1.0)
        root.children.append(Span(name="late", start=0.5, pid=1, end=2.0))
        assert any(
            "not contained" in p for p in validate_span_tree(root)
        )

    def test_trace_document_rejects_unfinished_root(self):
        with pytest.raises(ValidationError):
            trace_document(Span(name="session", start=0.0, pid=1))


class TestSession:
    def test_disabled_by_default(self):
        assert observability.active() is None
        assert not observability.enabled()
        # All helpers are no-ops without a session.
        observability.count("x")
        observability.observe_value("h", 1.0)
        observability.set_gauge("g", 2)
        with observability.span("nothing") as span:
            assert span is None

    def test_observe_installs_and_restores(self):
        with observability.observe() as outer:
            assert observability.active() is outer
            observability.count("n")
            with observability.observe() as inner:
                assert observability.active() is inner
                observability.count("n", 10)
            assert observability.active() is outer
            assert inner.metrics.counter("n") == 10
        assert observability.active() is None
        assert outer.metrics.counter("n") == 1

    def test_session_restored_when_block_raises(self):
        with pytest.raises(RuntimeError):
            with observability.observe():
                raise RuntimeError("boom")
        assert observability.active() is None

    def test_export_spans_round_trips_through_dicts(self):
        with observability.observe() as session:
            with observability.span("stage", k=1):
                observability.count("c")
        spans = session.export_spans()
        assert [s.name for s in spans] == ["stage"]
        clone = Span.from_dict(spans[0].to_dict())
        assert clone.attributes == {"k": 1}
        assert clone.end is not None

    def test_write_trace_json(self, tmp_path):
        path = tmp_path / "spans.json"
        with observability.observe() as session:
            with observability.span("stage"):
                pass
        write_trace_json(str(path), session.finish())
        document = json.loads(path.read_text())
        assert document["schema"] == TRACE_SCHEMA
        assert document["root"]["name"] == "session"
        assert document["root"]["children"][0]["name"] == "stage"


class TestProfiling:
    def test_none_path_is_a_passthrough(self):
        with profile_stage(None):
            value = sum(range(10))
        assert value == 45

    def test_writes_pstats_report(self, tmp_path):
        path = tmp_path / "profile.txt"
        with profile_stage(str(path)):
            sum(range(1000))
        text = path.read_text()
        assert "function calls" in text
