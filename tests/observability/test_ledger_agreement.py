"""Ledgers and metrics counters must never disagree.

The repo keeps three truthful records of what went wrong or was
attempted: the harness failure ledger (summarised by
:class:`~repro.eval.diagnostics.TelemetrySummary`), the cascade's
:class:`~repro.bounds.cascade.DegradationReport`, and the circuit
breaker's snapshot.  Each is produced at the same code points that
increment the corresponding metrics counters, so the two views must
match *exactly* — these regressions pin that.
"""

import pytest

from repro import observability
from repro.bounds import bound_cascade
from repro.engine import TelemetryRecorder
from repro.eval import run_simulation
from repro.eval.diagnostics import summarize_telemetry
from repro.resilience import FailurePolicy, InjectedFault, temporary_algorithm
from repro.resilience.supervisor import BreakerConfig, CircuitBreaker, Deadline
from repro.synthetic import GeneratorConfig, empirical_parameters, generate_dataset

CONFIG = GeneratorConfig(n_sources=8, n_assertions=24, n_trees=(3, 4))


class _FlakySeedFinder:
    """Fails deterministically per trial seed (pure function of seed)."""

    algorithm_name = "flaky-seed-ledger"
    accepts_trial_seed = True

    def __init__(self, seed=None, **_kwargs):
        self._seed = seed

    def fit(self, problem):
        from repro.baselines import make_fact_finder

        if self._seed % 3 == 0:
            raise InjectedFault(f"flaky on seed {self._seed}")
        return make_fact_finder("em", seed=self._seed).fit(problem)


class TestTelemetrySummaryAgreement:
    def test_retry_and_skip_counts_match_counters(self):
        recorder = TelemetryRecorder()
        with temporary_algorithm(_FlakySeedFinder):
            with observability.observe() as session:
                result = run_simulation(
                    CONFIG,
                    algorithms=("em", _FlakySeedFinder.algorithm_name),
                    n_trials=6,
                    seed=8,
                    include_optimal=False,
                    telemetry=recorder,
                    failure_policy=FailurePolicy.retry(max_attempts=2),
                )
        summary = summarize_telemetry(recorder.events, result.failures)
        counters = session.metrics.snapshot()["counters"]
        # The run must actually exercise both actions.
        assert summary.n_retried > 0
        assert summary.n_skipped > 0
        assert counters["harness.failures.retried"] == summary.n_retried
        assert counters["harness.failures.skipped"] == summary.n_skipped
        assert (
            summary.n_trial_failures
            == summary.n_retried + summary.n_skipped
        )
        # The counter sees every EM loop in the process (including the
        # chaos finder's internal delegate fits, which carry no
        # telemetry callback), so it can only be >= the recorder's view.
        assert counters["em.iterations"] >= summary.n_iterations
        assert counters["harness.trials"] == 6


class TestDegradationReportAgreement:
    def test_tier_attempts_match_cascade_counters(self):
        dataset = generate_dataset(CONFIG, seed=21)
        params = empirical_parameters(dataset.problem).clamp(1e-4)
        dependency = dataset.problem.dependency.values
        with observability.observe() as session:
            outcome = bound_cascade(dependency, params, seed=3)
        self._assert_attempts_match(outcome.report, session)

    def test_degraded_run_still_matches(self):
        # An already-expired deadline forces the cascade all the way
        # down to the analytic tier, recording skips along the way.
        dataset = generate_dataset(CONFIG, seed=22)
        params = empirical_parameters(dataset.problem).clamp(1e-4)
        dependency = dataset.problem.dependency.values
        with observability.observe() as session:
            outcome = bound_cascade(
                dependency, params, deadline=Deadline.after(1e-9), seed=3
            )
        assert outcome.report.degraded
        self._assert_attempts_match(outcome.report, session)

    @staticmethod
    def _assert_attempts_match(report, session):
        counters = session.metrics.snapshot()["counters"]
        expected = {}
        for attempt in report.attempts:
            key = f"cascade.attempts.{attempt.tier}.{attempt.status}"
            expected[key] = expected.get(key, 0) + 1
        recorded = {
            name: value
            for name, value in counters.items()
            if name.startswith("cascade.attempts.")
        }
        assert recorded == expected


class TestBreakerAgreement:
    def test_snapshot_matches_transition_counters(self):
        config = BreakerConfig(
            failure_threshold=0.5, window=4, min_calls=2, cooldown_calls=2
        )
        with observability.observe() as session:
            breaker = CircuitBreaker(config)
            # Trip it: enough failures inside the window.
            for _ in range(2):
                assert breaker.allow()
                breaker.record_failure()
            # Short-circuit during cooldown (the second cooldown call
            # transitions to half-open and is admitted as the probe).
            refused = sum(0 if breaker.allow() else 1 for _ in range(2))
            # The half-open probe succeeds -> closed again.
            breaker.record_success()
            assert breaker.allow()
            breaker.record_success()
        counters = session.metrics.snapshot()["counters"]
        snapshot = breaker.snapshot()
        assert snapshot["state"] == "closed"
        assert counters["breaker.transitions.opened"] == snapshot["n_trips"] == 1
        assert (
            counters["breaker.short_circuits"]
            == snapshot["n_short_circuits"]
            == refused
        )
        assert refused > 0
        assert counters["breaker.transitions.half_open"] == 1
        assert counters["breaker.transitions.closed"] == 1

    def test_short_circuited_ledger_matches_counter(self):
        with temporary_algorithm(_FlakySeedFinder):
            with observability.observe() as session:
                result = run_simulation(
                    CONFIG,
                    algorithms=(_FlakySeedFinder.algorithm_name,),
                    n_trials=10,
                    seed=8,
                    include_optimal=False,
                    failure_policy=FailurePolicy.skip(),
                    breaker_config=BreakerConfig(
                        failure_threshold=0.4,
                        window=4,
                        min_calls=2,
                        cooldown_calls=3,
                    ),
                )
        counters = session.metrics.snapshot()["counters"]
        n_short = sum(
            1 for f in result.failures if f.action == "short_circuited"
        )
        assert n_short > 0
        assert counters["harness.failures.short_circuited"] == n_short
