"""Regenerate ``tests/data/kernel_reference.npz``.

The file pins the outputs of the estimation and bound kernels as they
were *before* the ``repro.kernels`` optimisation layer landed, so the
parity suite can assert the optimised paths reproduce them — bit for
bit for the deterministic kernels (E-step, M-step), within the
documented tolerances for the reordered (exact) and resampled (Gibbs)
ones.  See ``tests/kernels/cases.py`` for the tolerance rationale.

Run from the repository root::

    PYTHONPATH=src:tests python -m kernels.make_reference

The archive was captured at the pre-optimisation commit and should not
normally be regenerated; doing so on an optimised tree re-pins the
*new* kernels and the suite stops guarding the swap.
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.bounds import exact_bound, gibbs_bound
from repro.engine.backends import CSRBackend, DenseBackend
from repro.sparse import SparseSensingProblem

from kernels import cases

OUT = pathlib.Path(__file__).parent.parent / "data" / "kernel_reference.npz"


def _engine_arrays(label: str, backend, params) -> dict:
    posterior, log_likelihood = backend.e_step(params)
    updated = backend.m_step(posterior, params)
    return {
        f"{label}_posterior": posterior,
        f"{label}_ll": np.array([log_likelihood]),
        f"{label}_m_a": updated.a,
        f"{label}_m_b": updated.b,
        f"{label}_m_f": updated.f,
        f"{label}_m_g": updated.g,
        f"{label}_m_z": np.array([updated.z]),
    }


def _bound_arrays(label: str, result) -> dict:
    return {
        label: np.array(
            [result.total, result.false_positive, result.false_negative]
        )
    }


def main() -> None:
    arrays = {}
    problem = cases.problem()
    sparse_problem = SparseSensingProblem.from_dense(problem)
    for params_label, params in (
        ("mid", cases.params_mid()),
        ("degenerate", cases.params_degenerate()),
    ):
        arrays.update(
            _engine_arrays(
                f"dense_{params_label}", DenseBackend(problem), params
            )
        )
        arrays.update(
            _engine_arrays(
                f"csr_{params_label}", CSRBackend(sparse_problem), params
            )
        )

    for dep_label, dependency in cases.dependency_cases().items():
        for params_label, params in cases.bound_param_cases().items():
            exact = exact_bound(dependency, params)
            arrays.update(
                _bound_arrays(f"exact_{dep_label}_{params_label}", exact)
            )
            gibbs = gibbs_bound(
                dependency,
                params,
                config=cases.GIBBS_PIN_CONFIG,
                seed=cases.GIBBS_PIN_SEED,
            )
            arrays.update(
                _bound_arrays(f"gibbs_{dep_label}_{params_label}", gibbs)
            )

    OUT.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(OUT, **arrays)
    print(f"wrote {len(arrays)} arrays -> {OUT}")


if __name__ == "__main__":
    main()
