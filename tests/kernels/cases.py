"""Shared fixtures for the kernel-parity suite.

One module defines every (problem, parameters, config) combination so
that ``make_reference.py`` (which pins the *pre-optimisation* outputs
into ``tests/data/kernel_reference.npz``) and the parity tests (which
compare the optimised kernels against those pins) can never drift
apart.

Case families
-------------
* ``mid``         — generic informative parameters, mixed dependency.
* ``degenerate``  — rates at the epsilon clamp (the EM loop's worst
                    numerical corner).
* ``all_dep`` / ``all_indep`` — dependency columns at the extremes,
  where the dedup machinery collapses the whole matrix to one chain.
"""

from __future__ import annotations

import numpy as np

from repro.bounds.gibbs import GibbsConfig
from repro.core.model import DEFAULT_EPSILON, SourceParameters
from repro.synthetic import GeneratorConfig, generate_dataset

#: Seed for the shared synthetic problem (distinct from the engine
#: parity suite's 1234 so the two pins are independent).
PROBLEM_SEED = 777

#: Monte-Carlo tolerance for the Gibbs kernel swap.  The vectorised
#: blocked sampler draws a *different* (equally valid) chain than the
#: historical per-source scan sampler, so agreement is statistical, not
#: bitwise: both estimates sit within sampling error of the same bound.
#: 2000-sweep runs put that error well under 0.02 (the same slack the
#: accuracy tests allow against the exact bound).
GIBBS_TOLERANCE = 0.02

#: The exact bound enumerates the identical pattern set in a different
#: (Gray-code) order, so totals agree to float summation error only.
EXACT_TOLERANCE = 1e-10

#: Deterministic Gibbs configuration: fixed sweep count, no early stop.
GIBBS_PIN_CONFIG = GibbsConfig(min_sweeps=2000, max_sweeps=2000)

GIBBS_PIN_SEED = 123


def problem():
    """The shared dense synthetic problem (n=20, m=50, mixed trees)."""
    return generate_dataset(
        GeneratorConfig.paper_defaults(), seed=PROBLEM_SEED
    ).problem.without_truth()


def params_mid(n_sources: int = 20) -> SourceParameters:
    """Generic informative parameters, clamped like the EM loop's."""
    return SourceParameters.random(n_sources, seed=5, informative=True).clamp(
        DEFAULT_EPSILON
    )


def params_degenerate(n_sources: int = 20) -> SourceParameters:
    """Rates pinned at the epsilon clamp — log terms at their extremes."""
    return SourceParameters.from_scalars(
        n_sources, a=1.0, b=0.0, f=1.0, g=0.0, z=0.5
    ).clamp(DEFAULT_EPSILON)


def dependency_cases(n_sources: int = 20):
    """Named dependency matrices the bound kernels are pinned on."""
    rng = np.random.default_rng(42)
    return {
        "mixed": (rng.random((n_sources, 30)) < 0.3).astype(np.int8),
        "all_dep": np.ones((n_sources, 5), dtype=np.int8),
        "all_indep": np.zeros((n_sources, 5), dtype=np.int8),
    }


def bound_param_cases(n_sources: int = 20):
    """Named parameter sets the bound kernels are pinned on."""
    return {
        "mid": params_mid(n_sources),
        "degenerate": params_degenerate(n_sources),
    }
