"""Unit-level behaviour of the ``repro.kernels`` building blocks.

The parity suite (``test_parity.py``) checks end-to-end agreement with
the pre-optimisation pins; the tests here check the pieces in
isolation — cell codes, table-gather kernels, log tables, dedup, the
identity cache — plus the strict ``GibbsConfig`` field validation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bounds import exact_bound
from repro.bounds.gibbs import GibbsConfig
from repro.core.model import DEFAULT_EPSILON, SourceParameters
from repro.kernels.dedup import group_columns, group_paired_columns, unique_columns
from repro.kernels.enumeration import table_bytes_estimate
from repro.kernels.likelihood import (
    claim_codes,
    dense_column_log_likelihoods,
    flat_claim_codes,
    masked_column_log_likelihoods,
)
from repro.kernels.tables import (
    IndependenceLogTables,
    LogParameterTables,
    ParamsKeyedCache,
)
from repro.resilience import Deadline
from repro.utils.errors import (
    DeadlineExceeded,
    MemoryBudgetError,
    ValidationError,
)


def _random_binary(shape, seed, density=0.5):
    return (np.random.default_rng(seed).random(shape) < density).astype(np.int8)


class TestClaimCodes:
    def test_codes_enumerate_the_four_cells(self):
        sc = np.array([[0, 1, 0, 1]])
        dep = np.array([[0, 0, 1, 1]])
        assert claim_codes(sc, dep).tolist() == [[0, 1, 2, 3]]

    def test_flat_codes_offset_rows_into_the_table(self):
        sc = np.zeros((3, 2), dtype=np.int8)
        dep = np.ones((3, 2), dtype=np.int8)
        # code 2 in rows 0..2 -> flat 2, 6, 10 of the (3, 4) table.
        assert flat_claim_codes(sc, dep).tolist() == [[2, 2], [6, 6], [10, 10]]

    def test_any_binary_dtype_accepted(self):
        sc = np.array([[0.0, 1.0]])
        dep = np.array([[True, False]])
        assert claim_codes(sc, dep).tolist() == [[2, 1]]


class TestLogParameterTables:
    def test_views_alias_the_gather_tables(self):
        params = SourceParameters.random(7, seed=0).clamp(DEFAULT_EPSILON)
        tables = LogParameterTables.build(params)
        assert np.array_equal(tables.log_a, tables.table_true[:, 1])
        assert np.array_equal(tables.log_1f, tables.table_true[:, 2])
        assert np.array_equal(tables.log_g, tables.table_false[:, 3])
        assert tables.finite

    def test_logs_match_direct_computation(self):
        params = SourceParameters.random(5, seed=1).clamp(DEFAULT_EPSILON)
        tables = LogParameterTables.build(params)
        assert np.array_equal(tables.log_a, np.log(params.a))
        assert np.array_equal(tables.log_1a, np.log1p(-params.a))
        assert tables.log_z == float(np.log(params.z))

    def test_degenerate_rates_flagged_not_finite(self):
        params = SourceParameters.from_scalars(4, a=1.0, b=0.0, f=0.5, g=0.5, z=0.5)
        tables = LogParameterTables.build(params)
        assert not tables.finite

    def test_independence_tables_masked_cells_gather_zero(self):
        tables = IndependenceLogTables.build(np.array([0.7]), np.array([0.2]))
        assert tables.table_true[0, 0] == 0.0
        assert tables.table_true[0, 1] == 0.0
        assert tables.table_true[0, 3] == np.log(0.7)
        assert tables.finite


class TestGatherKernels:
    def test_dense_kernel_matches_multiply_add_bitwise(self):
        n, m = 13, 29
        sc = _random_binary((n, m), seed=2, density=0.6)
        dep = (_random_binary((n, m), seed=3, density=0.4) & sc).astype(np.int8)
        params = SourceParameters.random(n, seed=4).clamp(DEFAULT_EPSILON)
        tables = LogParameterTables.build(params)
        log_true, log_false = dense_column_log_likelihoods(sc, dep, tables)

        scf, depf = sc.astype(float), dep.astype(float)
        p1_t = depf * tables.log_f[:, None] + (1 - depf) * tables.log_a[:, None]
        p0_t = depf * tables.log_1f[:, None] + (1 - depf) * tables.log_1a[:, None]
        p1_f = depf * tables.log_g[:, None] + (1 - depf) * tables.log_b[:, None]
        p0_f = depf * tables.log_1g[:, None] + (1 - depf) * tables.log_1b[:, None]
        expect_true = (scf * p1_t + (1 - scf) * p0_t).sum(axis=0)
        expect_false = (scf * p1_f + (1 - scf) * p0_f).sum(axis=0)
        assert np.array_equal(log_true, expect_true)
        assert np.array_equal(log_false, expect_false)

    def test_masked_kernel_treats_masked_cells_as_missing(self):
        n, m = 9, 17
        sc = _random_binary((n, m), seed=5)
        mask = _random_binary((n, m), seed=6, density=0.7)
        t_rate = np.linspace(0.2, 0.8, n)
        b_rate = np.linspace(0.1, 0.4, n)
        tables = IndependenceLogTables.build(t_rate, b_rate)
        log_true, log_false = masked_column_log_likelihoods(sc, mask, tables)

        scf, maskf = sc.astype(float), mask.astype(float)
        expect_true = (
            maskf
            * (scf * np.log(t_rate)[:, None] + (1 - scf) * np.log1p(-t_rate)[:, None])
        ).sum(axis=0)
        assert np.allclose(log_true, expect_true, atol=0, rtol=0)
        # Fully masked column contributes exactly zero.
        sc1 = np.ones((n, 1), dtype=np.int8)
        zero_mask = np.zeros((n, 1), dtype=np.int8)
        lt, lf = masked_column_log_likelihoods(sc1, zero_mask, tables)
        assert lt[0] == 0.0 and lf[0] == 0.0


class TestDedup:
    def test_group_columns_roundtrip(self):
        matrix = np.array([[1, 0, 1, 1], [0, 1, 0, 0]])
        groups = group_columns(matrix)
        assert groups.n_unique == 2
        assert groups.collapsed
        assert groups.counts.sum() == 4
        # expand() scatters exactly: per-unique values land on every
        # original column of the group.
        per_unique = np.array([10.0, 20.0])
        expanded = groups.expand(per_unique)
        rebuilt = groups.unique[groups.inverse].T
        assert np.array_equal(rebuilt, matrix)
        assert expanded.shape == (4,)
        assert set(expanded.tolist()) <= {10.0, 20.0}

    def test_paired_grouping_keeps_pairs_distinct(self):
        top = np.array([[1, 1], [0, 0]])
        bottom = np.array([[0, 1], [0, 0]])
        groups, unique_top, unique_bottom = group_paired_columns(top, bottom)
        # Same top halves, different bottom halves: no collapse.
        assert groups.n_unique == 2
        assert unique_top.shape == (2, 2)
        assert unique_bottom.shape == (2, 2)

    def test_unique_columns_matches_group_columns(self):
        matrix = _random_binary((6, 40), seed=7, density=0.3)
        unique, counts = unique_columns(matrix)
        groups = group_columns(matrix)
        assert np.array_equal(unique, groups.unique)
        assert np.array_equal(counts, groups.counts)
        assert counts.sum() == 40

    def test_weights_are_column_shares(self):
        matrix = np.array([[1, 1, 0]])
        groups = group_columns(matrix)
        assert groups.weights().sum() == pytest.approx(1.0)


class TestParamsKeyedCache:
    def test_identity_keyed_lru(self):
        cache = ParamsKeyedCache()
        calls = []
        key_a, key_b = object(), object()
        assert cache.get(key_a, lambda: calls.append("a") or 1) == 1
        assert cache.get(key_a, lambda: calls.append("a2") or 2) == 1
        assert cache.get(key_b, lambda: calls.append("b") or 3) == 3
        # Multi-slot LRU: returning to key_a hits the second slot.
        assert cache.get(key_a, lambda: calls.append("a3") or 4) == 1
        assert calls == ["a", "b"]

    def test_least_recently_used_is_evicted(self):
        cache = ParamsKeyedCache(n_slots=2)
        keys = [object() for _ in range(3)]
        cache.get(keys[0], lambda: 0)
        cache.get(keys[1], lambda: 1)
        # keys[0] is now least recent; touching it promotes it ...
        assert cache.get(keys[0], lambda: 99) == 0
        # ... so inserting keys[2] evicts keys[1], not keys[0].
        cache.get(keys[2], lambda: 2)
        assert cache.get(keys[0], lambda: 98) == 0
        assert cache.get(keys[1], lambda: 97) == 97

    def test_single_slot_still_supported(self):
        cache = ParamsKeyedCache(n_slots=1)
        key_a, key_b = object(), object()
        assert cache.get(key_a, lambda: 1) == 1
        assert cache.get(key_b, lambda: 2) == 2
        # One slot: returning to key_a recomputes.
        assert cache.get(key_a, lambda: 3) == 3

    def test_rejects_non_positive_slots(self):
        with pytest.raises(ValidationError):
            ParamsKeyedCache(n_slots=0)

    def test_clear_drops_all_slots(self):
        cache = ParamsKeyedCache()
        keys = [object() for _ in range(3)]
        for value, key in enumerate(keys):
            cache.get(key, lambda value=value: value)
        cache.clear()
        assert cache.get(keys[0], lambda: 42) == 42


class TestGibbsConfigValidation:
    def test_defaults_valid(self):
        GibbsConfig()

    @pytest.mark.parametrize(
        "field", ["burn_in", "min_sweeps", "max_sweeps", "check_interval"]
    )
    def test_integer_fields_reject_bools(self, field):
        with pytest.raises(ValidationError):
            GibbsConfig(**{field: True})

    @pytest.mark.parametrize(
        "field", ["burn_in", "min_sweeps", "max_sweeps", "check_interval"]
    )
    def test_integer_fields_reject_floats_and_strings(self, field):
        with pytest.raises(ValidationError):
            GibbsConfig(**{field: 10.0})
        with pytest.raises(ValidationError):
            GibbsConfig(**{field: "10"})

    def test_numpy_integers_accepted(self):
        config = GibbsConfig(min_sweeps=np.int64(5), max_sweeps=np.int64(10))
        assert config.min_sweeps == 5

    def test_tolerance_rejects_bool_and_non_numbers(self):
        with pytest.raises(ValidationError):
            GibbsConfig(tolerance=True)
        with pytest.raises(ValidationError):
            GibbsConfig(tolerance="tight")
        with pytest.raises(ValidationError):
            GibbsConfig(tolerance=0.0)

    def test_collect_trace_requires_actual_bool(self):
        with pytest.raises(ValidationError):
            GibbsConfig(collect_trace=1)

    def test_sweep_ordering_enforced(self):
        with pytest.raises(ValidationError):
            GibbsConfig(min_sweeps=100, max_sweeps=50)


class TestEnumerationBudgets:
    """Deadline/memory supervision of the Gray-code enumeration kernel."""

    def _case(self, n=8, k=3, seed=42):
        dependency = _random_binary((n, k), seed=seed, density=0.4)
        params = SourceParameters.random(n, seed=seed, informative=True).clamp(
            1e-4
        )
        return dependency, params

    def test_generous_deadline_is_bit_transparent(self):
        dependency, params = self._case()
        plain = exact_bound(dependency, params)
        budgeted = exact_bound(dependency, params, deadline=Deadline.after(3600))
        assert budgeted.total == plain.total
        assert budgeted.false_positive == plain.false_positive
        assert budgeted.false_negative == plain.false_negative

    def test_expired_deadline_raises_with_pattern_progress(self):
        dependency, params = self._case()
        deadline = Deadline.after(1e-4)
        while not deadline.expired():
            pass
        with pytest.raises(DeadlineExceeded) as excinfo:
            exact_bound(dependency, params, deadline=deadline)
        assert "patterns_total" in excinfo.value.progress

    def test_memory_budget_guards_the_low_table_upfront(self):
        dependency, params = self._case()
        with pytest.raises(MemoryBudgetError) as excinfo:
            exact_bound(
                dependency,
                params,
                deadline=Deadline.unlimited(memory_bytes=64),
            )
        assert excinfo.value.budget_bytes == 64
        # A budget covering the estimate succeeds.
        roomy = table_bytes_estimate(dependency.shape[0], dependency.shape[1])
        result = exact_bound(
            dependency,
            params,
            deadline=Deadline.unlimited(memory_bytes=2 * roomy),
        )
        assert result.total == exact_bound(dependency, params).total

    def test_table_bytes_estimate_grows_with_the_problem(self):
        assert table_bytes_estimate(8, 1) > 0
        assert table_bytes_estimate(20, 4) >= table_bytes_estimate(20, 1)
        assert table_bytes_estimate(24, 2) >= table_bytes_estimate(20, 2)
