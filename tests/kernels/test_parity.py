"""Optimised kernels vs the pinned pre-optimisation outputs.

``tests/data/kernel_reference.npz`` holds the outputs of the E-step,
M-step, exact bound and Gibbs bound as computed by the code *before*
the ``repro.kernels`` layer landed (see ``make_reference.py``).  The
tests here run the optimised paths over the identical cases and demand:

* **bit-for-bit** equality for the engine kernels (dense and CSR E/M
  steps) — the table-gather rewrite is an exact selection of the same
  float values with the same reduction order, so nothing may move;
* agreement within ``EXACT_TOLERANCE`` for the exact bound — Gray-code
  enumeration visits the identical pattern set in a different order, so
  only float summation error is allowed;
* agreement within ``GIBBS_TOLERANCE`` for the Gibbs bound — the
  blocked sampler draws a different (equally valid) chain than the
  historical scan sampler, so agreement is statistical.

The case grid covers generic parameters, degenerate rates at the
epsilon clamp, and all-dependent / all-independent dependency columns
(where dedup collapses the matrix to a single unique column).
"""

from __future__ import annotations

import pathlib

import numpy as np
import pytest

from repro.bounds import exact_bound, gibbs_bound
from repro.engine.backends import CSRBackend, DenseBackend
from repro.sparse import SparseSensingProblem

from kernels import cases

REFERENCE = pathlib.Path(__file__).parent.parent / "data" / "kernel_reference.npz"


@pytest.fixture(scope="module")
def pins():
    return np.load(REFERENCE)


@pytest.fixture(scope="module")
def problem():
    return cases.problem()


@pytest.fixture(scope="module")
def sparse_problem(problem):
    return SparseSensingProblem.from_dense(problem)


PARAM_CASES = ["mid", "degenerate"]


def _params(label):
    return cases.params_mid() if label == "mid" else cases.params_degenerate()


class TestEngineBitwiseParity:
    """Dense and CSR E/M steps must reproduce the pins bit for bit."""

    @pytest.mark.parametrize("params_label", PARAM_CASES)
    def test_dense_backend(self, pins, problem, params_label):
        backend = DenseBackend(problem)
        self._check(pins, f"dense_{params_label}", backend, _params(params_label))

    @pytest.mark.parametrize("params_label", PARAM_CASES)
    def test_csr_backend(self, pins, sparse_problem, params_label):
        backend = CSRBackend(sparse_problem)
        self._check(pins, f"csr_{params_label}", backend, _params(params_label))

    @staticmethod
    def _check(pins, label, backend, params):
        posterior, log_likelihood = backend.e_step(params)
        updated = backend.m_step(posterior, params)
        produced = {
            f"{label}_posterior": posterior,
            f"{label}_ll": np.array([log_likelihood]),
            f"{label}_m_a": updated.a,
            f"{label}_m_b": updated.b,
            f"{label}_m_f": updated.f,
            f"{label}_m_g": updated.g,
            f"{label}_m_z": np.array([updated.z]),
        }
        for key, value in produced.items():
            pinned = pins[key]
            assert value.shape == pinned.shape, key
            assert np.array_equal(value, pinned), (
                f"{key} drifted from the pre-optimisation pin "
                f"(max abs diff {np.max(np.abs(value - pinned))})"
            )

    def test_posterior_equals_e_step_posterior(self, problem):
        # posterior() and e_step() share one cached likelihood pass.
        backend = DenseBackend(problem)
        params = cases.params_mid()
        posterior, _ = backend.e_step(params)
        assert np.array_equal(backend.posterior(params), posterior)


class TestBoundToleranceParity:
    """Bound kernels agree with the pins within documented tolerances."""

    @pytest.mark.parametrize("dep_label", ["mixed", "all_dep", "all_indep"])
    @pytest.mark.parametrize("params_label", PARAM_CASES)
    def test_exact_bound(self, pins, dep_label, params_label):
        dependency = cases.dependency_cases()[dep_label]
        result = exact_bound(dependency, _params(params_label))
        pinned = pins[f"exact_{dep_label}_{params_label}"]
        produced = np.array(
            [result.total, result.false_positive, result.false_negative]
        )
        assert np.allclose(produced, pinned, atol=cases.EXACT_TOLERANCE, rtol=0)

    @pytest.mark.parametrize("dep_label", ["mixed", "all_dep", "all_indep"])
    @pytest.mark.parametrize("params_label", PARAM_CASES)
    def test_gibbs_bound(self, pins, dep_label, params_label):
        key = f"gibbs_{dep_label}_{params_label}"
        if key not in pins:
            pytest.skip(f"{key} not pinned (degenerate Gibbs cases vary)")
        dependency = cases.dependency_cases()[dep_label]
        result = gibbs_bound(
            dependency,
            _params(params_label),
            config=cases.GIBBS_PIN_CONFIG,
            seed=cases.GIBBS_PIN_SEED,
        )
        pinned = pins[key]
        produced = np.array(
            [result.total, result.false_positive, result.false_negative]
        )
        assert np.allclose(produced, pinned, atol=cases.GIBBS_TOLERANCE, rtol=0)
