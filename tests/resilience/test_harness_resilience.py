"""Trial isolation in the simulation harness: policies, ledger, telemetry."""

import numpy as np
import pytest

from repro.baselines import make_fact_finder
from repro.engine import TelemetryRecorder
from repro.eval import run_simulation, summarize_telemetry
from repro.parallel import ParallelConfig
from repro.resilience import (
    BreakerConfig,
    FailurePolicy,
    InjectedFault,
    chaos_finder,
    temporary_algorithm,
)
from repro.resilience.policy import ACTION_SHORT_CIRCUITED, retry_seed
from repro.synthetic import GeneratorConfig
from repro.utils.errors import ValidationError

pytestmark = pytest.mark.chaos

CONFIG = GeneratorConfig(n_sources=10, n_assertions=30, n_trees=(4, 5))


def _chaos(fail_fits=(), name="chaos-em"):
    """A chaos wrapper around the independent EM baseline."""
    return chaos_finder(
        lambda seed: make_fact_finder("em", seed=seed),
        fail_fits=fail_fits,
        name=name,
    )


class TestFailurePolicies:
    def test_fail_fast_propagates_the_injected_fault(self):
        with temporary_algorithm(_chaos(fail_fits=(0,))) as name:
            with pytest.raises(InjectedFault):
                run_simulation(
                    CONFIG,
                    algorithms=("em", name),
                    n_trials=3,
                    seed=42,
                    include_optimal=False,
                )

    def test_skip_policy_completes_with_populated_ledger(self):
        # The chaos algorithm is killed on trial 1 (its fit #1); the
        # harness must finish all trials for every other algorithm.
        with temporary_algorithm(_chaos(fail_fits=(1,))) as name:
            result = run_simulation(
                CONFIG,
                algorithms=("em", name),
                n_trials=3,
                seed=42,
                include_optimal=False,
                failure_policy=FailurePolicy.skip(),
            )
        assert len(result.series["em"].accuracy) == 3
        assert len(result.series[name].accuracy) == 2
        assert len(result.failures) == 1
        failure = result.failures[0]
        assert failure.trial == 1
        assert failure.algorithm == name
        assert failure.error_type == "InjectedFault"
        assert failure.action == "skipped"
        assert result.failure_counts() == {name: {"skipped": 1}}
        assert result.n_skipped(name) == 1

    def test_retry_policy_recovers_and_records_the_attempt(self):
        # Fit #1 (trial 1, attempt 0) dies; the retry (fit #2) succeeds,
        # so the series is complete and the ledger records one retry.
        with temporary_algorithm(_chaos(fail_fits=(1,))) as name:
            result = run_simulation(
                CONFIG,
                algorithms=(name,),
                n_trials=3,
                seed=42,
                include_optimal=False,
                failure_policy=FailurePolicy.retry(max_attempts=2),
            )
        assert len(result.series[name].accuracy) == 3
        assert len(result.failures) == 1
        assert result.failures[0].action == "retried"
        assert result.n_skipped(name) == 0

    def test_retry_exhaustion_skips_with_full_ledger(self):
        # Trial 0 fails on the original attempt and both retries.
        with temporary_algorithm(_chaos(fail_fits=(0, 1, 2))) as name:
            result = run_simulation(
                CONFIG,
                algorithms=(name,),
                n_trials=2,
                seed=42,
                include_optimal=False,
                failure_policy=FailurePolicy.retry(max_attempts=3),
            )
        assert len(result.series[name].accuracy) == 1
        actions = [f.action for f in result.failures]
        assert actions == ["retried", "retried", "skipped"]

    def test_invalid_policy_mode_rejected(self):
        with pytest.raises(ValidationError):
            FailurePolicy(mode="explode")
        with pytest.raises(ValidationError):
            FailurePolicy.retry(max_attempts=0)


class TestDeterminismUnderFaults:
    def test_surviving_series_match_a_fault_free_run(self):
        """Fault-free algorithms are bit-identical whatever the policy."""
        reference = run_simulation(
            CONFIG,
            algorithms=("em",),
            n_trials=3,
            seed=42,
            include_optimal=False,
        )
        with temporary_algorithm(_chaos(fail_fits=(0, 1, 2))) as name:
            chaotic = run_simulation(
                CONFIG,
                algorithms=("em", name),
                n_trials=3,
                seed=42,
                include_optimal=False,
                failure_policy=FailurePolicy.retry(max_attempts=1),
            )
        assert chaotic.series["em"].accuracy == reference.series["em"].accuracy
        assert (
            chaotic.series["em"].false_positive_rate
            == reference.series["em"].false_positive_rate
        )

    def test_retry_seed_is_deterministic_and_leaves_attempt_zero_alone(self):
        assert retry_seed(1234, 0) == 1234
        assert retry_seed(1234, 1) == retry_seed(1234, 1)
        assert retry_seed(1234, 1) != retry_seed(1234, 2)
        assert retry_seed(1234, 1) != retry_seed(1235, 1)


class TestTelemetryFailureCounts:
    def test_summary_folds_in_the_ledger(self):
        recorder = TelemetryRecorder()
        with temporary_algorithm(_chaos(fail_fits=(1,))) as name:
            result = run_simulation(
                CONFIG,
                algorithms=("em", name),
                n_trials=3,
                seed=42,
                include_optimal=False,
                telemetry=recorder,
                failure_policy=FailurePolicy.skip(),
            )
        summary = summarize_telemetry(recorder.events, failures=result.failures)
        assert summary.n_trial_failures == 1
        assert summary.n_skipped == 1
        assert summary.n_retried == 0
        assert summary.n_iterations == len(recorder.events) > 0

    def test_summary_defaults_to_zero_counts(self):
        recorder = TelemetryRecorder()
        run_simulation(
            CONFIG,
            algorithms=("em",),
            n_trials=1,
            seed=1,
            include_optimal=False,
            telemetry=recorder,
        )
        summary = summarize_telemetry(recorder.events)
        assert summary.n_trial_failures == 0
        assert summary.n_retried == 0
        assert summary.n_skipped == 0


class TestNonFiniteScoresArePolicyFailures:
    def test_nan_scores_are_skipped_not_recorded(self):
        class NaNFinder:
            algorithm_name = "nan-finder"
            accepts_trial_seed = True

            def __init__(self, seed=None, **_kwargs):
                self._seed = seed

            def fit(self, problem):
                inner = make_fact_finder("em", seed=self._seed).fit(problem)
                poisoned = inner.scores.copy()
                poisoned[0] = np.nan
                object.__setattr__(inner, "scores", poisoned)
                return inner

        with temporary_algorithm(NaNFinder) as name:
            result = run_simulation(
                CONFIG,
                algorithms=(name,),
                n_trials=2,
                seed=3,
                include_optimal=False,
                failure_policy=FailurePolicy.skip(),
            )
        assert result.series[name].accuracy == []
        assert {f.error_type for f in result.failures} == {"DataError"}


class TestCircuitBreakerInHarness:
    def test_persistent_failures_trip_into_short_circuits(self):
        # The chaos algorithm fails every fit; with a 2-call window the
        # breaker trips early and later trials are refused without even
        # attempting the fit.
        with temporary_algorithm(
            _chaos(fail_fits=tuple(range(50)), name="always-boom")
        ) as name:
            result = run_simulation(
                CONFIG,
                algorithms=("em", name),
                n_trials=8,
                seed=42,
                include_optimal=False,
                failure_policy=FailurePolicy.skip(),
                breaker_config=BreakerConfig(
                    failure_threshold=0.5, window=2, min_calls=2, cooldown_calls=3
                ),
            )
        counts = result.failure_counts()[name]
        assert counts.get("short_circuited", 0) > 0
        assert counts.get("skipped", 0) >= 2
        refused = [f for f in result.failures if f.action == ACTION_SHORT_CIRCUITED]
        assert all(f.error_type == "CircuitOpenError" for f in refused)
        # The healthy co-scheduled algorithm is untouched by the breaker.
        assert len(result.series["em"].accuracy) == 8
        assert result.failure_counts().get("em") is None

    def test_breaker_is_transparent_for_healthy_algorithms(self):
        kwargs = dict(
            algorithms=("em",), n_trials=4, seed=7, include_optimal=False
        )
        plain = run_simulation(CONFIG, **kwargs)
        guarded = run_simulation(CONFIG, breaker_config=BreakerConfig(), **kwargs)
        assert plain.series["em"].accuracy == guarded.series["em"].accuracy
        assert guarded.failures == []

    def test_breaker_requires_the_serial_path(self):
        # Breaker state spans trials; a pooled run would fork it per
        # worker and silently diverge, so the combination is rejected.
        with pytest.raises(ValidationError, match="breaker"):
            run_simulation(
                CONFIG,
                algorithms=("em",),
                n_trials=2,
                seed=1,
                include_optimal=False,
                breaker_config=BreakerConfig(),
                parallel=ParallelConfig(n_jobs=2),
            )


class TestCascadeBoundInHarness:
    def test_deadlined_optimal_bound_matches_the_plain_one(self):
        # On these tiny problems the cascade's exact tier always fits a
        # 30 s budget, so the deadline-aware path must be bit-identical.
        kwargs = dict(
            algorithms=("em",), n_trials=3, seed=11, include_optimal=True
        )
        plain = run_simulation(CONFIG, **kwargs)
        deadlined = run_simulation(CONFIG, bound_deadline_seconds=30.0, **kwargs)
        assert plain.series["optimal"].accuracy == deadlined.series["optimal"].accuracy
        assert (
            plain.series["optimal"].false_positive_rate
            == deadlined.series["optimal"].false_positive_rate
        )

    def test_bound_deadline_must_be_positive(self):
        with pytest.raises(ValidationError):
            run_simulation(
                CONFIG,
                algorithms=("em",),
                n_trials=1,
                seed=1,
                bound_deadline_seconds=0.0,
            )
