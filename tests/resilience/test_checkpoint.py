"""Checkpoint/resume: atomicity, fingerprinting, and bit-for-bit identity."""

import json

import pytest

from repro.baselines import make_fact_finder
from repro.eval import run_simulation
from repro.resilience import (
    FailurePolicy,
    InjectedFault,
    chaos_finder,
    load_checkpoint,
    save_checkpoint,
    simulation_fingerprint,
    temporary_algorithm,
)
from repro.resilience.policy import TrialFailure
from repro.synthetic import GeneratorConfig
from repro.utils.errors import DataError, ValidationError

pytestmark = pytest.mark.chaos

CONFIG = GeneratorConfig(n_sources=10, n_assertions=30, n_trees=(4, 5))


def _fingerprint(seed=1, n_trials=2):
    return simulation_fingerprint(
        CONFIG,
        algorithms=("em",),
        n_trials=n_trials,
        seed=seed,
        include_optimal=False,
    )


class TestCheckpointFile:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "ckpt.json"
        failures = [
            TrialFailure(
                trial=0,
                algorithm="em",
                attempt=0,
                error_type="InjectedFault",
                message="boom",
                action="skipped",
            )
        ]
        series = {"em": {"accuracy": [0.9], "false_positive_rate": [0.1], "false_negative_rate": [0.2]}}
        save_checkpoint(
            path,
            fingerprint=_fingerprint(),
            completed_trials=1,
            series=series,
            failures=failures,
        )
        state = load_checkpoint(path, _fingerprint())
        assert state.completed_trials == 1
        assert state.series == series
        assert state.failures == failures
        # No temporary file is left behind by the atomic write.
        assert list(tmp_path.iterdir()) == [path]

    def test_fingerprint_mismatch_raises(self, tmp_path):
        path = tmp_path / "ckpt.json"
        save_checkpoint(
            path, fingerprint=_fingerprint(seed=1), completed_trials=1, series={}
        )
        with pytest.raises(DataError, match="different experiment"):
            load_checkpoint(path, _fingerprint(seed=2))

    def test_corrupt_file_raises(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text("{ not json")
        with pytest.raises(DataError, match="invalid JSON"):
            load_checkpoint(path, _fingerprint())

    def test_wrong_kind_raises(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text(json.dumps({"kind": "something_else"}))
        with pytest.raises(DataError, match="not a simulation checkpoint"):
            load_checkpoint(path, _fingerprint())


class TestHarnessCheckpointing:
    def test_checkpoint_requires_integer_seed(self, tmp_path):
        with pytest.raises(ValidationError, match="integer seed"):
            run_simulation(
                CONFIG,
                algorithms=("em",),
                n_trials=1,
                seed=None,
                include_optimal=False,
                checkpoint_path=str(tmp_path / "ckpt.json"),
            )

    def test_interrupted_sweep_resumes_bit_for_bit(self, tmp_path):
        """Kill the sweep at trial 2, resume, and match an uninterrupted run."""
        path = str(tmp_path / "ckpt.json")
        algorithms = ("em", "chaos-ckpt")

        def factory(fail_fits):
            return chaos_finder(
                lambda seed: make_fact_finder("em", seed=seed),
                fail_fits=fail_fits,
                name="chaos-ckpt",
            )

        kwargs = dict(
            algorithms=algorithms, n_trials=4, seed=7, include_optimal=False
        )
        # Reference: uninterrupted, no faults.
        with temporary_algorithm(factory(())):
            reference = run_simulation(CONFIG, **kwargs)

        # Interrupted: the chaos algorithm dies on its fit #2 (trial 2)
        # under fail_fast, after trials 0-1 were checkpointed.
        with temporary_algorithm(factory((2,))):
            with pytest.raises(InjectedFault):
                run_simulation(CONFIG, checkpoint_path=path, **kwargs)
        state = load_checkpoint(
            path,
            simulation_fingerprint(
                CONFIG,
                algorithms=algorithms,
                n_trials=4,
                seed=7,
                include_optimal=False,
            ),
        )
        assert state.completed_trials == 2

        # Resume with the fault disarmed: trials 2-3 run, 0-1 come from
        # the checkpoint, and the result matches the reference exactly.
        with temporary_algorithm(factory(())):
            resumed = run_simulation(CONFIG, checkpoint_path=path, **kwargs)
        for name in reference.series:
            assert resumed.series[name].accuracy == reference.series[name].accuracy
            assert (
                resumed.series[name].false_positive_rate
                == reference.series[name].false_positive_rate
            )
            assert (
                resumed.series[name].false_negative_rate
                == reference.series[name].false_negative_rate
            )
        assert resumed.failures == []

    def test_resume_replays_optimal_bound_draws(self, tmp_path):
        """Identity also holds when the optimal bound consumes RNG draws."""
        path = str(tmp_path / "ckpt.json")
        kwargs = dict(
            algorithms=("voting",), n_trials=3, seed=11, include_optimal=True
        )
        reference = run_simulation(CONFIG, **kwargs)

        def factory(fail_fits):
            return chaos_finder(
                lambda seed: make_fact_finder("voting"),
                fail_fits=fail_fits,
                name="chaos-opt",
            )

        chaos_kwargs = dict(
            algorithms=("voting", "chaos-opt"),
            n_trials=3,
            seed=11,
            include_optimal=True,
        )
        with temporary_algorithm(factory((1,))):
            with pytest.raises(InjectedFault):
                run_simulation(CONFIG, checkpoint_path=path, **chaos_kwargs)
        with temporary_algorithm(factory(())):
            resumed = run_simulation(CONFIG, checkpoint_path=path, **chaos_kwargs)
        # The chaos wrapper shares the master RNG protocol, so "voting"
        # and "optimal" series match the chaos-free reference.
        assert resumed.series["voting"].accuracy == reference.series["voting"].accuracy
        assert (
            resumed.series["optimal"].accuracy == reference.series["optimal"].accuracy
        )

    def test_completed_run_short_circuits_on_resume(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        kwargs = dict(
            algorithms=("em",), n_trials=2, seed=5, include_optimal=False
        )
        first = run_simulation(CONFIG, checkpoint_path=path, **kwargs)
        again = run_simulation(CONFIG, checkpoint_path=path, **kwargs)
        assert again.series["em"].accuracy == first.series["em"].accuracy
        assert again.n_trials == first.n_trials

    def test_skip_policy_failures_survive_the_checkpoint(self, tmp_path):
        path = str(tmp_path / "ckpt.json")

        cls = chaos_finder(
            lambda seed: make_fact_finder("em", seed=seed),
            fail_fits=(0,),
            name="chaos-ledger",
        )
        with temporary_algorithm(cls) as name:
            result = run_simulation(
                CONFIG,
                algorithms=(name,),
                n_trials=2,
                seed=9,
                include_optimal=False,
                failure_policy=FailurePolicy.skip(),
                checkpoint_path=path,
            )
        assert [f.action for f in result.failures] == ["skipped"]
        state = load_checkpoint(
            path,
            simulation_fingerprint(
                CONFIG,
                algorithms=(name,),
                n_trials=2,
                seed=9,
                include_optimal=False,
            ),
        )
        assert state.failures == result.failures
