"""Unit coverage of the supervision primitives.

:class:`Deadline` is threaded through every long-running loop in the
library, so its contract — no-op without a budget, structured
:class:`DeadlineExceeded` with partial progress when it fires,
picklable across workers — is load-bearing for everything above it.
The backoff and breaker primitives are pure call-counted state machines
by design; these tests pin the determinism that design buys.
"""

import pickle
import time

import numpy as np
import pytest

from repro.resilience import (
    BreakerConfig,
    CircuitBreaker,
    Deadline,
    FailurePolicy,
    backoff_delay,
    parse_timespan,
)
from repro.resilience.supervisor import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
)
from repro.utils.errors import (
    CircuitOpenError,
    DeadlineExceeded,
    MemoryBudgetError,
    ValidationError,
)


class TestDeadlineValidation:
    @pytest.mark.parametrize("bad", [0, -1, -0.5, True, "5s", [5]])
    def test_rejects_non_positive_and_non_number_seconds(self, bad):
        with pytest.raises(ValidationError):
            Deadline(bad)

    @pytest.mark.parametrize("bad", [0, -1, 2.5, True, np.True_, "1G"])
    def test_rejects_bad_memory_budgets(self, bad):
        with pytest.raises(ValidationError):
            Deadline.unlimited(memory_bytes=bad)

    def test_numpy_scalars_accepted(self):
        deadline = Deadline(np.float64(5.0), memory_bytes=np.int64(1024))
        assert deadline.budget_seconds == 5.0
        assert deadline.memory_bytes == 1024


class TestDeadlineClock:
    def test_unlimited_never_expires_and_check_is_noop(self):
        deadline = Deadline.unlimited()
        assert not deadline.expired()
        assert deadline.remaining() == float("inf")
        deadline.check("anything", iteration=3)  # must not raise

    def test_expiry_and_remaining_floor(self):
        deadline = Deadline.after(0.005)
        time.sleep(0.02)
        assert deadline.expired()
        assert deadline.remaining() == 0.0
        assert deadline.elapsed() >= 0.005

    def test_check_raises_with_structured_progress(self):
        deadline = Deadline.after(0.001)
        time.sleep(0.01)
        with pytest.raises(DeadlineExceeded) as excinfo:
            deadline.check("unit-loop", iteration=7, delta=0.25)
        error = excinfo.value
        assert error.context == "unit-loop"
        assert error.progress == {"iteration": 7, "delta": 0.25}
        assert error.budget_seconds == 0.001
        assert error.elapsed_seconds >= 0.001
        assert "unit-loop" in str(error)

    def test_check_memory_noop_without_budget(self):
        Deadline.after(60).check_memory(10**15, "huge table")  # must not raise

    def test_check_memory_raises_with_byte_counts(self):
        deadline = Deadline.unlimited(memory_bytes=1024)
        deadline.check_memory(512, "small table")  # fits
        with pytest.raises(MemoryBudgetError) as excinfo:
            deadline.check_memory(4096, "big table")
        assert excinfo.value.required_bytes == 4096
        assert excinfo.value.budget_bytes == 1024

    def test_picklable_with_budget_preserved(self):
        # Workers must inherit the parent's *remaining* budget:
        # time.monotonic is system-wide, so shipping started_at works.
        deadline = Deadline.after(60, memory_bytes=2048)
        clone = pickle.loads(pickle.dumps(deadline))
        assert clone.budget_seconds == 60.0
        assert clone.memory_bytes == 2048
        assert clone.started_at == deadline.started_at
        assert not clone.expired()


class TestParseTimespan:
    @pytest.mark.parametrize(
        "spec, seconds",
        [
            ("500ms", 0.5),
            ("5s", 5.0),
            ("2m", 120.0),
            ("1.5h", 5400.0),
            ("30", 30.0),
            (" 10 s ", 10.0),
        ],
    )
    def test_valid_specs(self, spec, seconds):
        assert parse_timespan(spec) == pytest.approx(seconds)

    @pytest.mark.parametrize("spec", ["", "abc", "-5s", "5d", "0s", "0", "s5"])
    def test_invalid_specs_rejected(self, spec):
        with pytest.raises(ValidationError):
            parse_timespan(spec)


class TestBackoffDelay:
    def test_zero_base_disables_backoff(self):
        assert backoff_delay(3, base=0.0) == 0.0
        assert backoff_delay(1, base=-1.0) == 0.0

    def test_bad_attempt_rejected_when_active(self):
        with pytest.raises(ValidationError):
            backoff_delay(0, base=0.5)

    def test_pure_function_of_inputs(self):
        kwargs = dict(base=0.5, factor=2.0, max_delay=10.0, jitter=0.1, seed=99)
        assert backoff_delay(3, **kwargs) == backoff_delay(3, **kwargs)

    def test_without_jitter_exact_exponential(self):
        for attempt in (1, 2, 3, 4):
            expected = min(30.0, 0.25 * 2.0 ** (attempt - 1))
            assert backoff_delay(attempt, base=0.25, jitter=0.0) == expected

    def test_jitter_stays_within_band(self):
        for attempt in (1, 2, 5):
            for seed in (0, 7, 12345):
                nominal = min(30.0, 1.0 * 2.0 ** (attempt - 1))
                delay = backoff_delay(attempt, base=1.0, jitter=0.2, seed=seed)
                assert nominal * 0.8 <= delay <= nominal * 1.2

    def test_cap_applies_before_jitter(self):
        delay = backoff_delay(30, base=1.0, max_delay=5.0, jitter=0.1, seed=3)
        assert delay <= 5.0 * 1.1

    def test_seed_decorrelates_retry_storms(self):
        delays = {backoff_delay(2, base=1.0, jitter=0.5, seed=s) for s in range(8)}
        assert len(delays) > 1


class TestBreakerConfig:
    def test_defaults_valid(self):
        config = BreakerConfig()
        assert config.failure_threshold == 0.5

    @pytest.mark.parametrize("threshold", [0.0, -0.1, 1.5])
    def test_threshold_bounds(self, threshold):
        with pytest.raises(ValidationError):
            BreakerConfig(failure_threshold=threshold)

    @pytest.mark.parametrize("field", ["window", "min_calls", "cooldown_calls"])
    @pytest.mark.parametrize("bad", [0, -1, 2.5, True, np.True_])
    def test_counts_reject_non_positive_and_bools(self, field, bad):
        with pytest.raises(ValidationError):
            BreakerConfig(**{field: bad})


class TestCircuitBreaker:
    def test_needs_min_calls_before_tripping(self):
        breaker = CircuitBreaker(BreakerConfig(min_calls=4))
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == BREAKER_CLOSED
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        assert breaker.n_trips == 1

    def test_mixed_outcomes_below_threshold_stay_closed(self):
        breaker = CircuitBreaker(BreakerConfig(failure_threshold=0.5, window=8))
        for _ in range(6):
            breaker.record_success()
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == BREAKER_CLOSED
        assert breaker.failure_rate == pytest.approx(0.25)

    def _tripped(self):
        breaker = CircuitBreaker(BreakerConfig(min_calls=2, cooldown_calls=3))
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        return breaker

    def test_cooldown_is_counted_in_refused_calls(self):
        breaker = self._tripped()
        # cooldown_calls=3: two refusals, then the third becomes the probe.
        assert not breaker.allow()
        assert not breaker.allow()
        assert breaker.n_short_circuits == 2
        assert breaker.allow()
        assert breaker.state == BREAKER_HALF_OPEN

    def test_half_open_probe_success_closes_and_clears(self):
        breaker = self._tripped()
        while not breaker.allow():
            pass
        breaker.record_success()
        assert breaker.state == BREAKER_CLOSED
        assert breaker.failure_rate == 0.0

    def test_half_open_probe_failure_reopens(self):
        breaker = self._tripped()
        while not breaker.allow():
            pass
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        assert breaker.n_trips == 2

    def test_refused_call_error_is_descriptive(self):
        breaker = self._tripped()
        assert not breaker.allow()
        error = breaker.call_refused_error("algorithm 'em'")
        assert isinstance(error, CircuitOpenError)
        assert "circuit breaker open" in str(error)
        assert "algorithm 'em'" in str(error)

    def test_snapshot_is_json_friendly(self):
        breaker = self._tripped()
        snapshot = breaker.snapshot()
        assert snapshot["state"] == BREAKER_OPEN
        assert snapshot["n_trips"] == 1
        assert set(snapshot) == {
            "state",
            "failure_rate",
            "n_trips",
            "n_short_circuits",
        }


class TestFailurePolicyBackoff:
    def test_defaults_keep_immediate_retry(self):
        policy = FailurePolicy.retry(3)
        assert policy.backoff_base == 0.0
        assert policy.delay_before(2, seed=42) == 0.0

    def test_attempt_zero_never_delays(self):
        policy = FailurePolicy.retry(3, backoff_base=1.0)
        assert policy.delay_before(0, seed=42) == 0.0

    def test_delay_matches_backoff_delay(self):
        policy = FailurePolicy.retry(
            4, backoff_base=0.5, backoff_factor=3.0, backoff_max=9.0,
            backoff_jitter=0.2,
        )
        for attempt in (1, 2, 3):
            assert policy.delay_before(attempt, seed=7) == backoff_delay(
                attempt, base=0.5, factor=3.0, max_delay=9.0, jitter=0.2, seed=7
            )

    def test_numpy_bool_attempt_budget_rejected(self):
        # np.True_ is not a ``bool`` subclass; the historical isinstance
        # check accepted it as max_attempts=1.
        with pytest.raises(ValidationError):
            FailurePolicy.retry(np.True_)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"backoff_base": -0.1},
            {"backoff_base": True},
            {"backoff_factor": 0.5},
            {"backoff_max": -1.0},
            {"backoff_jitter": 1.0},
            {"backoff_jitter": -0.1},
            {"backoff_base": "fast"},
        ],
    )
    def test_backoff_fields_validated(self, kwargs):
        with pytest.raises(ValidationError):
            FailurePolicy.retry(3, **kwargs)
