"""Chaos coverage of the bound degradation cascade.

Two contracts from ``repro.bounds.cascade`` are pinned here:

* **always answers** — whatever is injected (NaN-poisoned dependency
  cells, tiers that raise, expired deadlines, even a sabotaged analytic
  runner) :func:`bound_cascade` returns a finite bound and a
  :class:`DegradationReport` that truthfully says which tier ran and
  why the better ones did not;
* **transparent when unconstrained** — with no deadline and no faults
  the cascade calls the top tier verbatim, so its bound is bit-for-bit
  the tier's own output (property-tested across random problems).

The deadline plumbing through :class:`~repro.engine.driver.EMDriver`
is exercised at the bottom: an expired budget surfaces as a structured
:class:`DeadlineExceeded`, never a hang or a bare timeout.
"""

from types import SimpleNamespace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bounds import (
    CASCADE_TIERS,
    GibbsConfig,
    MAX_EXACT_SOURCES,
    bound_cascade,
    estimate_exact_seconds,
    exact_bound,
)
from repro.bounds.cascade import analytic_tier
from repro.core import SourceParameters
from repro.engine import DenseBackend, EMDriver, support_initialisation
from repro.resilience import Deadline, FaultInjector, InjectedFault
from repro.synthetic import GeneratorConfig, empirical_parameters, generate_dataset
from repro.utils.errors import DeadlineExceeded, ValidationError

pytestmark = pytest.mark.chaos

CONFIG = GeneratorConfig(n_sources=8, n_assertions=24, n_trees=(3, 4))

#: Small sampler budget: these tests check degradation logic, not
#: Monte-Carlo accuracy.
FAST_GIBBS = GibbsConfig(burn_in=10, min_sweeps=50, max_sweeps=100, check_interval=50)


def _problem_and_params(seed=21):
    dataset = generate_dataset(CONFIG, seed=seed)
    params = empirical_parameters(dataset.problem).clamp(1e-4)
    return dataset.problem, params


def _boom(*_args, **_kwargs):
    raise InjectedFault("tier sabotaged by test")


def _assert_finite(bound):
    assert np.isfinite(bound.total)
    assert np.isfinite(bound.false_positive)
    assert np.isfinite(bound.false_negative)
    assert bound.total == pytest.approx(
        bound.false_positive + bound.false_negative, abs=1e-9
    )


class TestTransparency:
    def test_unconstrained_cascade_is_bitwise_the_exact_bound(self):
        problem, params = _problem_and_params()
        dependency = problem.dependency.values
        reference = exact_bound(dependency, params)
        outcome = bound_cascade(dependency, params)
        assert outcome.bound.total == reference.total
        assert outcome.bound.false_positive == reference.false_positive
        assert outcome.bound.false_negative == reference.false_negative
        assert outcome.report.tier == "exact"
        assert outcome.report.requested == "exact"
        assert not outcome.report.degraded
        assert [a.status for a in outcome.report.attempts] == ["ok"]

    def test_generous_deadline_changes_nothing(self):
        problem, params = _problem_and_params()
        dependency = problem.dependency.values
        reference = exact_bound(dependency, params)
        outcome = bound_cascade(dependency, params, deadline=Deadline.after(3600))
        assert outcome.bound.total == reference.total
        assert outcome.report.tier == "exact"

    @settings(deadline=None, max_examples=15)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_transparency_property_over_random_problems(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(3, 7))
        k = int(rng.integers(1, 4))
        dependency = (rng.random((n, k)) < 0.4).astype(np.int8)
        params = SourceParameters.random(n, seed=seed, informative=True).clamp(1e-4)
        reference = exact_bound(dependency, params)
        outcome = bound_cascade(dependency, params)
        assert outcome.bound.total == reference.total
        assert outcome.bound.false_positive == reference.false_positive
        assert outcome.bound.false_negative == reference.false_negative
        assert not outcome.report.degraded


class TestCostModel:
    def test_large_problems_request_gibbs(self):
        n = MAX_EXACT_SOURCES + 10
        rng = np.random.default_rng(3)
        dependency = (rng.random((n, 2)) < 0.3).astype(np.int8)
        params = SourceParameters.random(n, seed=3, informative=True).clamp(1e-4)
        outcome = bound_cascade(dependency, params, config=FAST_GIBBS, seed=11)
        assert outcome.report.requested == "gibbs"
        assert outcome.report.tier == "gibbs"
        exact_attempt = outcome.report.attempts[0]
        assert exact_attempt.tier == "exact"
        assert exact_attempt.status == "skipped"
        assert "MAX_EXACT_SOURCES" in exact_attempt.reason
        _assert_finite(outcome.bound)

    def test_estimate_exact_seconds_scales_with_problem(self):
        assert estimate_exact_seconds(20, 4) == 4 * estimate_exact_seconds(20, 1)
        assert estimate_exact_seconds(21, 1) == 2 * estimate_exact_seconds(20, 1)

    def test_expired_deadline_degrades_to_analytic_with_truthful_report(self):
        problem, params = _problem_and_params()
        deadline = Deadline.after(1e-4)
        while not deadline.expired():
            pass
        outcome = bound_cascade(problem.dependency.values, params, deadline=deadline)
        assert outcome.report.tier == "analytic"
        assert outcome.report.requested == "exact"
        assert outcome.report.degraded
        statuses = {a.tier: a.status for a in outcome.report.attempts}
        assert statuses["exact"] == "skipped"
        assert statuses["gibbs"] == "skipped"
        assert statuses["analytic"] == "ok"
        assert "tier=analytic requested=exact" in outcome.report.summary()
        _assert_finite(outcome.bound)


class TestAlwaysAnswers:
    def test_nan_poisoned_dependency_still_yields_finite_bound(self):
        problem, params = _problem_and_params()
        poisoned = FaultInjector(seed=7).poison_dependency(problem, rate=0.2)
        assert np.isnan(poisoned.dependency.values).any()
        outcome = bound_cascade(
            poisoned.dependency.values, params, config=FAST_GIBBS, seed=5
        )
        assert outcome.report.tier == "analytic"
        assert outcome.report.degraded
        failed = [a for a in outcome.report.attempts if a.status == "failed"]
        assert failed, "the poisoned tiers must be recorded, not hidden"
        _assert_finite(outcome.bound)

    def test_faulty_upper_tiers_fall_through_to_analytic(self):
        problem, params = _problem_and_params()
        outcome = bound_cascade(
            problem.dependency.values,
            params,
            runners={"exact": _boom, "gibbs": _boom},
        )
        assert outcome.report.tier == "analytic"
        statuses = [(a.tier, a.status) for a in outcome.report.attempts]
        assert statuses[:2] == [("exact", "failed"), ("gibbs", "failed")]
        assert "InjectedFault" in outcome.report.attempts[0].reason
        _assert_finite(outcome.bound)

    def test_even_a_sabotaged_analytic_runner_gets_the_prior_floor(self):
        problem, params = _problem_and_params()
        outcome = bound_cascade(
            problem.dependency.values,
            params,
            runners={tier: _boom for tier in CASCADE_TIERS},
        )
        z = params.z
        assert outcome.bound.total == pytest.approx(min(z, 1.0 - z))
        assert outcome.report.tier == "analytic"
        assert outcome.report.attempts[-1].reason == "prior floor min(z, 1-z)"
        _assert_finite(outcome.bound)

    def test_non_finite_tier_output_counts_as_failure(self):
        problem, params = _problem_and_params()

        def nan_tier(*_args, **_kwargs):
            # BoundResult itself refuses non-finite totals, so a tier
            # can only smuggle one out through a look-alike object.
            return SimpleNamespace(total=float("nan"))

        outcome = bound_cascade(
            problem.dependency.values, params, runners={"exact": nan_tier}
        )
        assert outcome.report.attempts[0].status == "failed"
        assert "non-finite" in outcome.report.attempts[0].reason
        assert outcome.report.tier == "gibbs"
        _assert_finite(outcome.bound)

    def test_analytic_tier_never_raises_on_garbage(self):
        # SourceParameters validates at construction, so garbage rates
        # arrive through a duck-typed stand-in (exactly what a buggy
        # upstream estimator would hand over).
        params = SimpleNamespace(
            a=np.array([np.nan, 0.7]),
            b=np.array([0.2, np.inf]),
            f=np.array([0.5, np.nan]),
            g=np.array([0.2, 0.2]),
            z=0.4,
        )
        dependency = np.array([[np.nan], [1.0]])
        bound = analytic_tier(dependency, params)
        _assert_finite(bound)
        assert bound.total <= 0.4  # never looser than the prior floor


class TestValidation:
    def test_unknown_runner_tier_rejected(self):
        problem, params = _problem_and_params()
        with pytest.raises(ValidationError, match="unknown cascade tiers"):
            bound_cascade(
                problem.dependency.values, params, runners={"quantum": _boom}
            )

    def test_deadline_must_be_a_deadline(self):
        problem, params = _problem_and_params()
        with pytest.raises(ValidationError, match="Deadline"):
            bound_cascade(problem.dependency.values, params, deadline=5.0)


class TestDriverBudget:
    def test_expired_budget_raises_structured_deadline_exceeded(self):
        dataset = generate_dataset(CONFIG, seed=13)
        backend = DenseBackend(dataset.problem.without_truth())
        budget = Deadline.after(1e-4)
        while not budget.expired():
            pass
        driver = EMDriver(max_iterations=50, tolerance=1e-8, budget=budget)
        with pytest.raises(DeadlineExceeded) as excinfo:
            driver.run(backend, support_initialisation(backend))
        error = excinfo.value
        assert error.context == "EMDriver.run"
        assert "iteration" in error.progress
        assert "log_likelihood" in error.progress

    def test_generous_budget_is_bit_transparent(self):
        dataset = generate_dataset(CONFIG, seed=13)
        backend = DenseBackend(dataset.problem.without_truth())
        plain = EMDriver(max_iterations=50, tolerance=1e-8).run(
            backend, support_initialisation(backend)
        )
        budgeted = EMDriver(
            max_iterations=50, tolerance=1e-8, budget=Deadline.after(3600)
        ).run(backend, support_initialisation(backend))
        np.testing.assert_array_equal(plain.posterior, budgeted.posterior)
        assert plain.log_likelihood == budgeted.log_likelihood
        assert plain.n_iterations == budgeted.n_iterations
