"""Streaming batch safety: validation, degenerate batches, and rollback."""

import numpy as np
import pytest

from repro.core import DependencyMatrix, SensingProblem, SourceClaimMatrix
from repro.extensions import StreamingEMExt
from repro.extensions import streaming as streaming_module
from repro.resilience import FaultInjector
from repro.synthetic import GeneratorConfig, generate_dataset
from repro.utils.errors import DataError, ValidationError

N_SOURCES = 12
CONFIG = GeneratorConfig(n_sources=N_SOURCES, n_assertions=30, n_trees=(5, 6))


def _batch(seed):
    return generate_dataset(CONFIG, seed=seed).problem.without_truth()


def _state(stream):
    """Deep snapshot of everything partial_fit may mutate."""
    return (
        {k: v.copy() for k, v in stream._stats.numerators.items()},
        {k: v.copy() for k, v in stream._stats.denominators.items()},
        stream._stats.z_numerator,
        stream._stats.z_denominator,
        stream.parameters,
        stream.n_batches,
    )


def _assert_state_equal(state, stream):
    numerators, denominators, z_num, z_den, parameters, n_batches = state
    for key, value in numerators.items():
        np.testing.assert_array_equal(stream._stats.numerators[key], value)
    for key, value in denominators.items():
        np.testing.assert_array_equal(stream._stats.denominators[key], value)
    assert stream._stats.z_numerator == z_num
    assert stream._stats.z_denominator == z_den
    assert stream.n_batches == n_batches
    np.testing.assert_array_equal(stream.parameters.a, parameters.a)
    np.testing.assert_array_equal(stream.parameters.b, parameters.b)
    np.testing.assert_array_equal(stream.parameters.f, parameters.f)
    np.testing.assert_array_equal(stream.parameters.g, parameters.g)
    assert stream.parameters.z == parameters.z


class TestDegenerateBatches:
    def test_empty_batch_rejected_and_state_unchanged(self):
        stream = StreamingEMExt(n_sources=N_SOURCES)
        stream.partial_fit(_batch(1))
        before = _state(stream)
        empty = SensingProblem(
            claims=SourceClaimMatrix(np.zeros((N_SOURCES, 0), dtype=np.int8)),
            dependency=DependencyMatrix(np.zeros((N_SOURCES, 0), dtype=np.int8)),
        )
        with pytest.raises(ValidationError, match="no assertions"):
            stream.partial_fit(empty)
        _assert_state_equal(before, stream)

    def test_all_zero_batch_is_absorbed_with_finite_parameters(self):
        stream = StreamingEMExt(n_sources=N_SOURCES)
        stream.partial_fit(_batch(1))
        silent = SensingProblem(
            claims=SourceClaimMatrix(np.zeros((N_SOURCES, 5), dtype=np.int8)),
            dependency=DependencyMatrix(np.zeros((N_SOURCES, 5), dtype=np.int8)),
        )
        result = stream.partial_fit(silent)
        assert stream.n_batches == 2
        assert stream.parameters.is_finite()
        assert np.all(np.isfinite(result.scores))

    def test_mismatched_source_count_rejected_and_state_unchanged(self):
        stream = StreamingEMExt(n_sources=N_SOURCES)
        stream.partial_fit(_batch(1))
        before = _state(stream)
        wrong = generate_dataset(
            GeneratorConfig(n_sources=N_SOURCES + 3, n_assertions=20, n_trees=(5, 6)),
            seed=2,
        ).problem.without_truth()
        with pytest.raises(ValidationError, match="sources"):
            stream.partial_fit(wrong)
        _assert_state_equal(before, stream)

    def test_nan_poisoned_batch_rejected_before_any_update(self):
        stream = StreamingEMExt(n_sources=N_SOURCES)
        stream.partial_fit(_batch(1))
        before = _state(stream)
        poisoned = FaultInjector(seed=0).poison_claims(_batch(2), rate=0.1)
        with pytest.raises(DataError, match="non-finite"):
            stream.partial_fit(poisoned)
        _assert_state_equal(before, stream)

    def test_nan_dependency_batch_rejected(self):
        stream = StreamingEMExt(n_sources=N_SOURCES)
        poisoned = FaultInjector(seed=0).poison_dependency(_batch(2), rate=0.1)
        with pytest.raises(DataError, match="non-finite"):
            stream.partial_fit(poisoned)
        assert stream.n_batches == 0


class TestRollback:
    def test_mid_update_failure_rolls_back_completely(self, monkeypatch):
        """A backend that dies *during* the update must leave no trace."""

        class ExplodingBackend(streaming_module.DenseBackend):
            def partition_counts(self, posterior):
                raise RuntimeError("disk on fire")

        stream = StreamingEMExt(n_sources=N_SOURCES)
        stream.partial_fit(_batch(1))
        before = _state(stream)
        monkeypatch.setattr(streaming_module, "DenseBackend", ExplodingBackend)
        with pytest.raises(RuntimeError, match="disk on fire"):
            stream.partial_fit(_batch(2))
        monkeypatch.undo()
        _assert_state_equal(before, stream)

    def test_stream_recovers_identically_after_a_failed_batch(self):
        """good → bad → good equals good → good, element for element."""
        clean = StreamingEMExt(n_sources=N_SOURCES, seed=0)
        dirty = StreamingEMExt(n_sources=N_SOURCES, seed=0)

        clean.partial_fit(_batch(1))
        dirty.partial_fit(_batch(1))

        poisoned = FaultInjector(seed=0).poison_claims(_batch(2), rate=0.1)
        with pytest.raises(DataError):
            dirty.partial_fit(poisoned)

        clean_result = clean.partial_fit(_batch(3))
        dirty_result = dirty.partial_fit(_batch(3))

        np.testing.assert_array_equal(clean_result.scores, dirty_result.scores)
        np.testing.assert_array_equal(
            clean.parameters.a, dirty.parameters.a
        )
        assert clean.n_batches == dirty.n_batches == 2
