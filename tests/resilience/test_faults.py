"""The fault-injection toolkit itself: determinism and fault shapes."""

import numpy as np
import pytest

from repro.baselines import ALGORITHM_REGISTRY, make_fact_finder
from repro.datasets import simulate_dataset
from repro.io.serialization import load_tweets, save_tweets
from repro.resilience import (
    FaultInjector,
    FlakyBackend,
    InjectedFault,
    NaNLikelihoodBackend,
    chaos_finder,
    temporary_algorithm,
)
from repro.synthetic import GeneratorConfig, generate_dataset
from repro.utils.errors import DataError, ValidationError


@pytest.fixture()
def problem():
    return generate_dataset(
        GeneratorConfig(n_sources=12, n_assertions=40, n_trees=(5, 6)), seed=5
    ).problem


class TestFaultInjector:
    def test_same_seed_same_corruption(self, problem):
        one = FaultInjector(seed=7).flip_claims(problem, rate=0.1)
        two = FaultInjector(seed=7).flip_claims(problem, rate=0.1)
        np.testing.assert_array_equal(one.claims.values, two.claims.values)

    def test_different_seed_different_corruption(self, problem):
        one = FaultInjector(seed=7).flip_claims(problem, rate=0.1)
        two = FaultInjector(seed=8).flip_claims(problem, rate=0.1)
        assert not np.array_equal(one.claims.values, two.claims.values)

    def test_flip_claims_stays_binary_and_touches_cells(self, problem):
        flipped = FaultInjector(seed=0).flip_claims(problem, rate=0.05)
        assert set(np.unique(flipped.claims.values)) <= {0, 1}
        n_changed = int((flipped.claims.values != problem.claims.values).sum())
        assert n_changed >= 1
        # The original problem is untouched.
        assert problem.claims.values.dtype == np.int8

    def test_flip_claims_rejects_bad_rate(self, problem):
        with pytest.raises(ValidationError):
            FaultInjector(seed=0).flip_claims(problem, rate=0.0)

    def test_byzantine_sources_invert_whole_rows(self, problem):
        corrupted = FaultInjector(seed=1).byzantine_sources(problem, fraction=0.25)
        diff_rows = np.where(
            (corrupted.claims.values != problem.claims.values).any(axis=1)
        )[0]
        expected = max(1, int(round(0.25 * problem.n_sources)))
        assert len(diff_rows) == expected
        for row in diff_rows:
            np.testing.assert_array_equal(
                corrupted.claims.values[row], 1 - problem.claims.values[row]
            )

    def test_poison_claims_introduces_nan_without_touching_original(self, problem):
        poisoned = FaultInjector(seed=2).poison_claims(problem, rate=0.05)
        assert np.isnan(poisoned.claims.values).any()
        assert not np.isnan(problem.claims.values.astype(float)).any()

    def test_poison_dependency_introduces_nan(self, problem):
        poisoned = FaultInjector(seed=2).poison_dependency(problem, rate=0.05)
        assert np.isnan(poisoned.dependency.values).any()

    def test_malformed_tweets_trip_the_loader(self, tmp_path):
        dataset = simulate_dataset("superbug", scale=0.03, seed=5)
        clean = tmp_path / "clean.jsonl"
        save_tweets(dataset.tweets, clean)
        lines = clean.read_text().splitlines()
        corrupted = FaultInjector(seed=3).malform_tweet_lines(lines, rate=0.3)
        assert corrupted != lines
        bad = tmp_path / "bad.jsonl"
        bad.write_text("\n".join(corrupted) + "\n")
        with pytest.raises(DataError):
            load_tweets(bad)


class _EchoBackend:
    """Minimal backend whose steps echo their inputs."""

    def posterior(self, params):
        return np.array([0.5])

    def m_step(self, posterior, params):
        return params

    def e_step(self, params):
        return np.array([0.5]), -1.0

    def helper(self):
        return "untouched"


class TestBackendWrappers:
    def test_flaky_backend_raises_on_chosen_calls_only(self):
        backend = FlakyBackend(_EchoBackend(), fail_calls=(1,))
        backend.m_step(None, "p")  # call 0 passes through
        with pytest.raises(InjectedFault):
            backend.m_step(None, "p")  # call 1 raises
        backend.m_step(None, "p")  # call 2 passes again
        assert backend.calls == 3

    def test_flaky_backend_delegates_other_methods(self):
        backend = FlakyBackend(_EchoBackend(), fail_calls=(0,))
        assert backend.helper() == "untouched"
        posterior, ll = backend.e_step("p")
        assert ll == -1.0

    def test_nan_likelihood_backend_poisons_chosen_e_steps(self):
        backend = NaNLikelihoodBackend(_EchoBackend(), nan_calls=(0,))
        _, first = backend.e_step("p")
        _, second = backend.e_step("p")
        assert np.isnan(first)
        assert second == -1.0


class TestChaosFinder:
    def test_fails_on_chosen_fit_indices(self, problem):
        cls = chaos_finder(
            lambda seed: make_fact_finder("voting"), fail_fits=(1,), name="boom"
        )
        blind = problem.without_truth()
        cls(seed=0).fit(blind)  # fit 0 succeeds
        with pytest.raises(InjectedFault):
            cls(seed=0).fit(blind)  # fit 1 dies (counter shared across instances)
        result = cls(seed=0).fit(blind)  # fit 2 succeeds again
        assert result.scores.shape == (problem.n_assertions,)

    def test_temporary_algorithm_registers_and_restores(self):
        cls = chaos_finder(lambda seed: make_fact_finder("voting"), name="temp-chaos")
        assert "temp-chaos" not in ALGORITHM_REGISTRY
        with temporary_algorithm(cls) as name:
            assert name == "temp-chaos"
            assert ALGORITHM_REGISTRY["temp-chaos"] is cls
        assert "temp-chaos" not in ALGORITHM_REGISTRY

    def test_temporary_algorithm_restores_shadowed_entry(self):
        original = ALGORITHM_REGISTRY["voting"]
        cls = chaos_finder(lambda seed: original(), name="voting")
        with temporary_algorithm(cls):
            assert ALGORITHM_REGISTRY["voting"] is cls
        assert ALGORITHM_REGISTRY["voting"] is original
