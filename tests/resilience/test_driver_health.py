"""Run-health guards in the EM driver: NaN-safe selection, isolation, budgets."""

import time
from dataclasses import dataclass

import numpy as np
import pytest

from repro.core import EMConfig, EMExtEstimator
from repro.engine import EMDriver, RunHealth
from repro.resilience import FaultInjector, FlakyBackend, InjectedFault, NaNLikelihoodBackend
from repro.synthetic import GeneratorConfig, generate_dataset
from repro.utils.errors import ConvergenceError, ValidationError


@dataclass(frozen=True)
class ScalarParams:
    """One-parameter toy model: EM halves the distance to a target."""

    value: float

    def max_difference(self, other: "ScalarParams") -> float:
        return abs(self.value - other.value)


class HalvingBackend:
    """Toy backend converging geometrically to ``target``."""

    def __init__(self, target: float = 1.0):
        self.target = target

    def posterior(self, params: ScalarParams) -> np.ndarray:
        return np.array([params.value])

    def m_step(self, posterior: np.ndarray, params: ScalarParams) -> ScalarParams:
        return ScalarParams(value=(params.value + self.target) / 2.0)

    def e_step(self, params: ScalarParams):
        return np.array([params.value]), -abs(params.value - self.target)


class SlowBackend(HalvingBackend):
    """Halving backend whose E-step takes a measurable amount of time."""

    def e_step(self, params: ScalarParams):
        time.sleep(0.005)
        return super().e_step(params)


def constant_initialiser(index, rng):
    return ScalarParams(0.0)


class TestNaNSafeSelection:
    def test_diverged_first_restart_never_shadows_finite_one(self):
        # Restart 0's only E-step returns NaN; restart 1 is healthy.  The
        # old `candidate_ll > best_ll` comparison kept the NaN restart.
        backend = NaNLikelihoodBackend(HalvingBackend(), nan_calls=(0,))
        driver = EMDriver(max_iterations=1, tolerance=1e-12, n_restarts=2)
        outcome = driver.fit(backend, constant_initialiser, seed=0)
        assert np.isfinite(outcome.log_likelihood)
        assert outcome.health is not None
        assert outcome.health.selected == 1
        assert outcome.health.restarts[0].status == "diverged"
        assert not outcome.health.ok  # a restart failed, even if recoverable

    def test_diverged_restart_stops_iterating(self):
        backend = NaNLikelihoodBackend(HalvingBackend(), nan_calls=(0,))
        driver = EMDriver(
            max_iterations=50, tolerance=1e-12, n_restarts=1, strict=True
        )
        with pytest.raises(ConvergenceError):
            driver.fit(backend, constant_initialiser, seed=0)
        # Only the poisoned iteration ran; the loop did not grind on NaNs.
        assert backend.calls == 1


class TestAllRestartsFail:
    def test_strict_mode_raises_convergence_error(self):
        backend = NaNLikelihoodBackend(HalvingBackend(), nan_calls=(0, 1))
        driver = EMDriver(
            max_iterations=1, tolerance=1e-12, n_restarts=2, strict=True
        )
        with pytest.raises(ConvergenceError) as excinfo:
            driver.fit(backend, constant_initialiser, seed=0)
        assert excinfo.value.iterations == 2
        assert np.isfinite(excinfo.value.residual)
        assert "every EM restart failed" in str(excinfo.value)

    def test_non_strict_mode_degrades_to_best_effort(self):
        backend = NaNLikelihoodBackend(HalvingBackend(), nan_calls=(0, 1))
        driver = EMDriver(max_iterations=1, tolerance=1e-12, n_restarts=2)
        outcome = driver.fit(backend, constant_initialiser, seed=0)
        assert not outcome.converged
        assert outcome.health.all_failed
        assert outcome.health.selected is None
        # The fallback still carries usable (finite) parameters.
        assert np.isfinite(outcome.parameters.value)

    def test_non_strict_without_fallback_still_raises(self):
        # Every restart *errors* (no diverged outcome to fall back on).
        backend = FlakyBackend(HalvingBackend(), fail_calls=(0, 1))
        driver = EMDriver(max_iterations=1, tolerance=1e-12, n_restarts=2)
        with pytest.raises(ConvergenceError):
            driver.fit(backend, constant_initialiser, seed=0)


class TestRestartIsolation:
    def test_errored_restart_is_recorded_and_skipped(self):
        backend = FlakyBackend(HalvingBackend(), fail_calls=(0,))
        driver = EMDriver(max_iterations=100, tolerance=1e-8, n_restarts=2)
        outcome = driver.fit(backend, constant_initialiser, seed=0)
        assert outcome.converged
        report = outcome.health.restarts[0]
        assert report.status == "error"
        assert "InjectedFault" in report.error
        assert outcome.health.selected == 1
        assert outcome.health.n_failed == 1

    def test_fault_free_fit_is_healthy(self):
        driver = EMDriver(max_iterations=100, tolerance=1e-8, n_restarts=2)
        outcome = driver.fit(HalvingBackend(), constant_initialiser, seed=0)
        assert outcome.health.ok
        assert [r.status for r in outcome.health.restarts] == ["converged"] * 2
        assert "2 restart(s)" in outcome.health.summary()


class TestWallClockBudget:
    def test_budget_bounds_the_fit_but_returns_a_result(self):
        driver = EMDriver(
            max_iterations=10_000,
            tolerance=1e-300,
            n_restarts=5,
            max_wall_seconds=0.02,
        )
        outcome = driver.fit(SlowBackend(), constant_initialiser, seed=0)
        assert outcome.health.budget_exhausted
        # At least the first restart ran and produced parameters.
        assert outcome.health.n_restarts >= 1
        assert outcome.health.n_restarts < 5
        assert np.isfinite(outcome.parameters.value)

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValidationError):
            EMDriver(max_iterations=1, tolerance=1e-6, max_wall_seconds=0.0)


class TestEndToEndGuards:
    """The guards through the real estimator on a poisoned problem."""

    @pytest.fixture()
    def poisoned_problem(self):
        problem = generate_dataset(
            GeneratorConfig(n_sources=10, n_assertions=30, n_trees=(4, 5)), seed=3
        ).problem.without_truth()
        return FaultInjector(seed=0).poison_claims(problem, rate=0.1)

    def test_strict_estimator_raises_on_poisoned_input(self, poisoned_problem):
        config = EMConfig(max_iterations=30, n_restarts=2, strict=True)
        estimator = EMExtEstimator(config=config, seed=0)
        with pytest.raises(ConvergenceError):
            estimator.fit(poisoned_problem)

    def test_non_strict_estimator_raises_when_nothing_usable_remains(
        self, poisoned_problem
    ):
        # Poisoned claims make every restart *error* (the M-step cannot
        # even build parameters), so there is no best-effort fallback to
        # degrade to: non-strict mode must raise too, with the restart
        # ledger in the message.
        config = EMConfig(max_iterations=30, n_restarts=2)
        with pytest.raises(ConvergenceError, match="2 error"):
            EMExtEstimator(config=config, seed=0).fit(poisoned_problem)

    def test_healthy_estimator_attaches_ok_health(self, synthetic_dataset):
        result = EMExtEstimator(seed=0).fit(
            synthetic_dataset.problem.without_truth()
        )
        assert isinstance(result.health, RunHealth)
        assert result.health.ok
