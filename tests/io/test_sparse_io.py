"""Tests for sparse-problem NPZ serialisation."""

import numpy as np
import pytest

pytest.importorskip("scipy")

from repro.io import load_sparse_problem, save_sparse_problem
from repro.sparse import SparseSensingProblem
from repro.utils.errors import DataError


@pytest.fixture
def sparse_problem(tiny_problem):
    return SparseSensingProblem.from_dense(tiny_problem)


class TestRoundTrip:
    def test_with_truth(self, sparse_problem, tmp_path):
        path = tmp_path / "problem.npz"
        save_sparse_problem(sparse_problem, path)
        loaded = load_sparse_problem(path)
        assert loaded.n_sources == sparse_problem.n_sources
        assert loaded.n_claims == sparse_problem.n_claims
        np.testing.assert_array_equal(
            np.asarray(loaded.claims.todense()),
            np.asarray(sparse_problem.claims.todense()),
        )
        np.testing.assert_array_equal(
            np.asarray(loaded.dependency.todense()),
            np.asarray(sparse_problem.dependency.todense()),
        )
        np.testing.assert_array_equal(loaded.truth, sparse_problem.truth)

    def test_without_truth(self, sparse_problem, tmp_path):
        path = tmp_path / "blind.npz"
        save_sparse_problem(sparse_problem.without_truth(), path)
        assert not load_sparse_problem(path).has_truth

    def test_large_problem_compact_on_disk(self, tmp_path):
        from scipy import sparse

        claims = sparse.random(
            2000, 3000, density=0.001, format="csr", random_state=0
        )
        claims.data[:] = 1.0
        problem = SparseSensingProblem(claims=claims, dependency=claims * 0)
        path = tmp_path / "big.npz"
        save_sparse_problem(problem, path)
        # 6M cells would be 6 MB even as int8; the archive stays tiny.
        assert path.stat().st_size < 200_000
        loaded = load_sparse_problem(path)
        assert loaded.n_claims == problem.n_claims

    def test_wrong_archive_rejected(self, tmp_path):
        path = tmp_path / "bogus.npz"
        np.savez(path, magic=np.array("something-else"))
        with pytest.raises(DataError):
            load_sparse_problem(path)
