"""Tests for serialisation round-trips."""

import json

import numpy as np
import pytest

from repro.core import EMExtEstimator, FactFindingResult
from repro.datasets import Tweet, simulate_dataset
from repro.io import (
    load_problem,
    load_result,
    load_tweets,
    save_problem,
    save_result,
    save_tweets,
)
from repro.utils.errors import DataError


class TestProblemRoundTrip:
    def test_with_truth(self, tiny_problem, tmp_path):
        path = tmp_path / "problem.json"
        save_problem(tiny_problem, path)
        loaded = load_problem(path)
        np.testing.assert_array_equal(
            loaded.claims.values, tiny_problem.claims.values
        )
        np.testing.assert_array_equal(
            loaded.dependency.values, tiny_problem.dependency.values
        )
        np.testing.assert_array_equal(loaded.truth, tiny_problem.truth)

    def test_without_truth(self, tiny_problem, tmp_path):
        path = tmp_path / "problem.json"
        save_problem(tiny_problem.without_truth(), path)
        assert not load_problem(path).has_truth

    def test_ids_preserved(self, tiny_problem, tmp_path):
        path = tmp_path / "problem.json"
        save_problem(tiny_problem, path)
        loaded = load_problem(path)
        assert loaded.claims.source_ids == tiny_problem.claims.source_ids

    def test_wrong_kind_rejected(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"format_version": 1, "kind": "other"}))
        with pytest.raises(DataError):
            load_problem(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"format_version": 99, "kind": "sensing_problem"}))
        with pytest.raises(DataError):
            load_problem(path)


class TestResultRoundTrip:
    def test_plain_result(self, tmp_path):
        result = FactFindingResult(
            algorithm="voting",
            scores=np.array([3.0, 1.0]),
            decisions=np.array([1, 0]),
        )
        path = tmp_path / "result.json"
        save_result(result, path)
        loaded = load_result(path)
        assert loaded.algorithm == "voting"
        np.testing.assert_array_equal(loaded.scores, result.scores)
        assert not hasattr(loaded, "parameters") or isinstance(
            loaded, FactFindingResult
        )

    def test_estimation_result(self, synthetic_dataset, tmp_path):
        result = EMExtEstimator(seed=0).fit(synthetic_dataset.problem.without_truth())
        path = tmp_path / "em.json"
        save_result(result, path)
        loaded = load_result(path)
        np.testing.assert_allclose(loaded.scores, result.scores)
        assert loaded.log_likelihood == pytest.approx(result.log_likelihood)
        assert loaded.converged == result.converged
        assert loaded.parameters.max_difference(result.parameters) < 1e-12

    def test_wrong_kind(self, tiny_problem, tmp_path):
        path = tmp_path / "problem.json"
        save_problem(tiny_problem, path)
        with pytest.raises(DataError):
            load_result(path)


class TestTweetsRoundTrip:
    def test_round_trip(self, tmp_path):
        dataset = simulate_dataset("kirkuk", scale=0.02, seed=0)
        path = tmp_path / "tweets.jsonl"
        count = save_tweets(dataset.tweets, path)
        assert count == len(dataset.tweets)
        loaded = load_tweets(path)
        assert loaded == dataset.tweets

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "tweets.jsonl"
        tweet = Tweet(tweet_id=0, user=1, time=0.5, text="x", assertion=0)
        save_tweets([tweet], path)
        path.write_text(path.read_text() + "\n\n")
        assert len(load_tweets(path)) == 1

    def test_invalid_json_line(self, tmp_path):
        path = tmp_path / "tweets.jsonl"
        path.write_text("{not json\n")
        with pytest.raises(DataError):
            load_tweets(path)

    def test_missing_field(self, tmp_path):
        path = tmp_path / "tweets.jsonl"
        path.write_text(json.dumps({"tweet_id": 0}) + "\n")
        with pytest.raises(DataError):
            load_tweets(path)

    def test_deterministic_bytes(self, tmp_path):
        dataset = simulate_dataset("kirkuk", scale=0.02, seed=0)
        path_a = tmp_path / "a.jsonl"
        path_b = tmp_path / "b.jsonl"
        save_tweets(dataset.tweets, path_a)
        save_tweets(dataset.tweets, path_b)
        assert path_a.read_bytes() == path_b.read_bytes()
