"""Tests for the end-to-end Apollo pipeline."""

import pytest

from repro.datasets import simulate_dataset
from repro.pipeline import ApolloPipeline
from repro.utils.errors import ValidationError


@pytest.fixture(scope="module")
def tweets():
    dataset = simulate_dataset("la_marathon", scale=0.04, seed=11)
    return dataset.evaluation_tweets()


class TestApolloPipeline:
    def test_run_with_em_ext(self, tweets):
        report = ApolloPipeline("em-ext", seed=0).run(tweets)
        assert report.algorithm == "em-ext"
        assert report.built.problem.n_assertions == len(report.ranked)
        # Ranked output is sorted by score descending.
        scores = [r.score for r in report.ranked]
        assert scores == sorted(scores, reverse=True)

    def test_top_k(self, tweets):
        report = ApolloPipeline("voting").run(tweets)
        top = report.top(5)
        assert len(top) == 5
        assert all(r.representative_text for r in top)
        assert all(r.n_supporters >= 1 for r in top)

    def test_retweets_produce_dependent_claims(self, tweets):
        report = ApolloPipeline("voting").run(tweets)
        assert report.built.problem.dependent_claim_fraction() > 0.0

    def test_explicit_follow_edges(self, tweets):
        users = sorted({t.user for t in tweets})[:2]
        report = ApolloPipeline("voting").run(
            tweets, follow_edges=[(users[0], users[1])]
        )
        assert report.built.graph.n_edges >= 1

    def test_unknown_algorithm_rejected(self, tweets):
        with pytest.raises(ValidationError):
            ApolloPipeline("telepathy").run(tweets)

    def test_deterministic(self, tweets):
        a = ApolloPipeline("em-ext", seed=7).run(tweets)
        b = ApolloPipeline("em-ext", seed=7).run(tweets)
        assert [r.assertion_id for r in a.ranked] == [r.assertion_id for r in b.ranked]
