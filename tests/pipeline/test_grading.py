"""Tests for the Section V-C grading protocol."""

import numpy as np
import pytest

from repro.core import FactFindingResult
from repro.datasets import AssertionLabel
from repro.pipeline import GradingReport, SimulatedGrader, grade_top_k
from repro.utils.errors import ValidationError

LABELS = [
    AssertionLabel.TRUE,
    AssertionLabel.FALSE,
    AssertionLabel.OPINION,
    AssertionLabel.TRUE,
    AssertionLabel.FALSE,
]


def _result(scores):
    scores = np.asarray(scores, dtype=float)
    return FactFindingResult(
        algorithm="t", scores=scores, decisions=(scores >= 0.5).astype(int)
    )


class TestSimulatedGrader:
    def test_noiseless_grades_match_labels(self):
        grader = SimulatedGrader(LABELS, seed=0)
        grades = grader.grade([0, 1, 2])
        assert grades[0] is AssertionLabel.TRUE
        assert grades[1] is AssertionLabel.FALSE
        assert grades[2] is AssertionLabel.OPINION

    def test_out_of_range_id(self):
        grader = SimulatedGrader(LABELS)
        with pytest.raises(ValidationError):
            grader.grade([99])

    def test_noise_flips_verifiable_only(self):
        grader = SimulatedGrader(LABELS, noise=1.0, seed=0)
        grades = grader.grade([0, 1, 2])
        assert grades[0] is AssertionLabel.FALSE  # flipped
        assert grades[1] is AssertionLabel.TRUE  # flipped
        assert grades[2] is AssertionLabel.OPINION  # opinions never flip

    def test_invalid_noise(self):
        with pytest.raises(ValidationError):
            SimulatedGrader(LABELS, noise=1.5)


class TestGradeTopK:
    def test_true_ratio_definition(self):
        # Algorithm ranks assertions 0,3 (true) top; 1 (false) third.
        results = {"good": _result([0.9, 0.5, 0.1, 0.8, 0.2])}
        grader = SimulatedGrader(LABELS, seed=0)
        reports = grade_top_k(results, grader, k=3, seed=0)
        report = reports["good"]
        assert report.n_true == 2
        assert report.n_false == 1
        assert report.n_opinion == 0
        assert report.true_ratio == pytest.approx(2 / 3)

    def test_better_ranking_scores_higher(self):
        good = _result([0.9, 0.1, 0.2, 0.8, 0.1])  # trues on top
        bad = _result([0.1, 0.9, 0.8, 0.1, 0.9])  # falses on top
        grader = SimulatedGrader(LABELS, seed=0)
        reports = grade_top_k({"good": good, "bad": bad}, grader, k=2, seed=0)
        assert reports["good"].true_ratio > reports["bad"].true_ratio

    def test_shared_pool_grading(self):
        """Both algorithms' shared assertions receive identical grades."""
        a = _result([0.9, 0.8, 0.1, 0.2, 0.3])
        b = _result([0.8, 0.9, 0.2, 0.1, 0.3])
        grader = SimulatedGrader(LABELS, noise=0.5, seed=1)
        reports = grade_top_k({"a": a, "b": b}, grader, k=2, seed=2)
        # Top-2 of both are assertions {0, 1}: identical grade pool →
        # identical counts.
        assert reports["a"].n_true == reports["b"].n_true
        assert reports["a"].n_false == reports["b"].n_false

    def test_k_validated(self):
        grader = SimulatedGrader(LABELS)
        with pytest.raises(ValidationError):
            grade_top_k({"a": _result([0.5] * 5)}, grader, k=0)

    def test_k_larger_than_m(self):
        grader = SimulatedGrader(LABELS, seed=0)
        reports = grade_top_k({"a": _result([0.9, 0.1, 0.5, 0.6, 0.2])}, grader, k=50)
        assert reports["a"].n_graded == 5


class TestGradingReport:
    def test_empty_report(self):
        report = GradingReport(algorithm="x", n_true=0, n_false=0, n_opinion=0)
        assert report.true_ratio == 0.0

    def test_counts(self):
        report = GradingReport(algorithm="x", n_true=3, n_false=1, n_opinion=1)
        assert report.n_graded == 5
        assert report.true_ratio == pytest.approx(0.6)
