"""Tests for the ingestion stage."""

import pytest

from repro.datasets import Tweet
from repro.pipeline import ingest_tweets
from repro.utils.errors import DataError


def _tweet(tweet_id, user, time, text="hello world", retweet_of=None):
    return Tweet(
        tweet_id=tweet_id, user=user, time=time, text=text,
        assertion=0, retweet_of=retweet_of,
    )


class TestIngest:
    def test_orders_by_time(self):
        result = ingest_tweets([_tweet(0, 10, 5.0), _tweet(1, 11, 1.0)])
        assert [t.tweet_id for t in result.tweets] == [1, 0]
        assert [t.order for t in result.tweets] == [0, 1]

    def test_compacts_user_ids(self):
        result = ingest_tweets([_tweet(0, 500, 1.0), _tweet(1, 7, 2.0), _tweet(2, 500, 3.0)])
        assert result.n_users == 2
        assert result.tweets[0].user_index == 0
        assert result.tweets[1].user_index == 1
        assert result.tweets[2].user_index == 0
        assert result.user_ids == [500, 7]

    def test_user_index_lookup(self):
        result = ingest_tweets([_tweet(0, 500, 1.0), _tweet(1, 7, 2.0)])
        assert result.user_index(7) == 1
        assert result.user_index(500) == 0

    def test_duplicate_tweet_ids(self):
        with pytest.raises(DataError):
            ingest_tweets([_tweet(0, 1, 1.0), _tweet(0, 2, 2.0)])

    def test_empty_text(self):
        with pytest.raises(DataError):
            ingest_tweets([_tweet(0, 1, 1.0, text="  ")])

    def test_retweet_reference_preserved(self):
        result = ingest_tweets([_tweet(0, 1, 1.0), _tweet(1, 2, 2.0, retweet_of=0)])
        assert result.tweets[1].retweet_of == 0

    def test_empty_stream(self):
        result = ingest_tweets([])
        assert result.n_users == 0
        assert result.tweets == []
