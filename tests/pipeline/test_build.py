"""Tests for matrix construction from pipeline stages."""

import pytest

from repro.datasets import Tweet
from repro.pipeline import (
    TokenClusterer,
    build_problem_from_clusters,
    infer_follow_edges,
    ingest_tweets,
)
from repro.pipeline.cluster import ClusterResult
from repro.utils.errors import ValidationError


def _tweet(tweet_id, user, time, text, retweet_of=None):
    return Tweet(
        tweet_id=tweet_id, user=user, time=time, text=text,
        assertion=0, retweet_of=retweet_of,
    )


@pytest.fixture
def cascade_tweets():
    """User 20 posts; user 30 retweets; user 40 posts something else."""
    return [
        _tweet(0, 20, 1.0, "main street bridge closed #traffic"),
        _tweet(1, 30, 2.0, "RT @user20: main street bridge closed #traffic", retweet_of=0),
        _tweet(2, 40, 3.0, "city marathon rerouted downtown #race"),
    ]


class TestInferFollowEdges:
    def test_retweet_implies_follow(self, cascade_tweets):
        ingest = ingest_tweets(cascade_tweets)
        edges = infer_follow_edges(ingest)
        # user 30 (index 1) follows user 20 (index 0).
        assert edges == [(1, 0)]

    def test_no_retweets_no_edges(self):
        ingest = ingest_tweets([_tweet(0, 1, 1.0, "hello world")])
        assert infer_follow_edges(ingest) == []


class TestBuildProblem:
    def test_end_to_end(self, cascade_tweets):
        ingest = ingest_tweets(cascade_tweets)
        clusters = TokenClusterer().cluster(ingest.tweets)
        built = build_problem_from_clusters(ingest, clusters)
        problem = built.problem
        assert problem.n_sources == 3
        assert problem.n_assertions == 2
        # The retweet is a dependent claim.
        bridge_cluster = clusters.assignments[0]
        assert problem.dependency[1, bridge_cluster] == 1
        assert problem.claims[1, bridge_cluster] == 1

    def test_explicit_follow_edges(self, cascade_tweets):
        ingest = ingest_tweets(cascade_tweets)
        clusters = TokenClusterer().cluster(ingest.tweets)
        built = build_problem_from_clusters(
            ingest, clusters, follow_edges=[(2, 0)]
        )
        assert built.graph.follows(2, 0)

    def test_mismatched_assignments(self, cascade_tweets):
        ingest = ingest_tweets(cascade_tweets)
        bad_clusters = ClusterResult(assignments=[0], representatives=["x"])
        with pytest.raises(ValidationError):
            build_problem_from_clusters(ingest, bad_clusters)

    def test_orphan_retweet_degrades_to_original(self):
        """A retweet whose parent is outside the window becomes original."""
        tweets = [
            _tweet(1, 30, 2.0, "RT @user20: bridge closed #traffic", retweet_of=0),
        ]
        ingest = ingest_tweets(tweets)
        clusters = TokenClusterer().cluster(ingest.tweets)
        built = build_problem_from_clusters(ingest, clusters)
        assert built.problem.n_sources == 1
        assert built.log.n_original_posts == 1

    def test_representatives_forwarded(self, cascade_tweets):
        ingest = ingest_tweets(cascade_tweets)
        clusters = TokenClusterer().cluster(ingest.tweets)
        built = build_problem_from_clusters(ingest, clusters)
        assert built.representatives == clusters.representatives
