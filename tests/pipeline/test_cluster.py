"""Tests for assertion clustering."""

import pytest

from repro.datasets import Tweet, simulate_dataset
from repro.pipeline import TokenClusterer, ingest_tweets, jaccard, tokenize
from repro.utils.errors import ValidationError


def _tweet(tweet_id, user, time, text, retweet_of=None):
    return Tweet(
        tweet_id=tweet_id, user=user, time=time, text=text,
        assertion=0, retweet_of=retweet_of,
    )


class TestTokenize:
    def test_strips_rt_prefix(self):
        assert tokenize("RT @user99: bridge closed #traffic") == tokenize(
            "bridge closed #traffic"
        )

    def test_drops_stop_and_filler_tokens(self):
        assert tokenize("BREAKING: the bridge is closed") == {"bridge", "closed"}

    def test_keeps_hashtags(self):
        assert "#paris" in tokenize("explosion reported #paris")

    def test_case_insensitive(self):
        assert tokenize("Bridge CLOSED") == tokenize("bridge closed")


class TestJaccard:
    def test_identical(self):
        tokens = frozenset({"a", "b"})
        assert jaccard(tokens, tokens) == 1.0

    def test_disjoint(self):
        assert jaccard(frozenset({"a"}), frozenset({"b"})) == 0.0

    def test_partial(self):
        assert jaccard(frozenset({"a", "b"}), frozenset({"b", "c"})) == pytest.approx(1 / 3)

    def test_empty(self):
        assert jaccard(frozenset(), frozenset({"a"})) == 0.0


class TestTokenClusterer:
    def test_threshold_validated(self):
        with pytest.raises(ValidationError):
            TokenClusterer(threshold=0.0)
        with pytest.raises(ValidationError):
            TokenClusterer(threshold=1.5)

    def test_groups_same_statement(self):
        tweets = ingest_tweets(
            [
                _tweet(0, 1, 1.0, "main street bridge closed after crash #traffic"),
                _tweet(1, 2, 2.0, "BREAKING: main street bridge closed after crash #traffic"),
                _tweet(2, 3, 3.0, "city marathon rerouted around downtown #race"),
            ]
        ).tweets
        result = TokenClusterer().cluster(tweets)
        assert result.n_clusters == 2
        assert result.assignments[0] == result.assignments[1]
        assert result.assignments[0] != result.assignments[2]

    def test_retweets_join_parent_cluster(self):
        tweets = ingest_tweets(
            [
                _tweet(0, 1, 1.0, "main street bridge closed #traffic"),
                _tweet(1, 2, 2.0, "RT @user1: main street bridge closed #traffic", retweet_of=0),
            ]
        ).tweets
        result = TokenClusterer().cluster(tweets)
        assert result.assignments == [0, 0]

    def test_representative_is_first_text(self):
        tweets = ingest_tweets(
            [
                _tweet(0, 1, 1.0, "main street bridge closed #traffic"),
                _tweet(1, 2, 2.0, "confirmed main street bridge closed #traffic"),
            ]
        ).tweets
        result = TokenClusterer().cluster(tweets)
        assert result.representatives == ["main street bridge closed #traffic"]

    def test_recovers_simulated_assertions(self):
        """On simulated tweets, clusters approximate the true assertion count."""
        dataset = simulate_dataset("superbug", scale=0.03, seed=5)
        tweets = dataset.tweets[:300]
        ingested = ingest_tweets(tweets).tweets
        result = TokenClusterer().cluster(ingested)
        true_count = len({t.assertion for t in tweets})
        assert 0.5 * true_count <= result.n_clusters <= 1.5 * true_count

    def test_empty_input(self):
        result = TokenClusterer().cluster([])
        assert result.n_clusters == 0
        assert result.assignments == []
