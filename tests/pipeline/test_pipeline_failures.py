"""Failure injection through the Apollo pipeline.

Real crawls are messy: windows cut cascades, users delete tweets,
texts collide.  The pipeline must degrade predictably, never crash or
silently corrupt the matrices.
"""

import pytest

from repro.datasets import Tweet
from repro.pipeline import ApolloPipeline, TokenClusterer, ingest_tweets
from repro.utils.errors import DataError


def _tweet(tweet_id, user, time, text, retweet_of=None):
    return Tweet(
        tweet_id=tweet_id, user=user, time=time, text=text,
        assertion=0, retweet_of=retweet_of,
    )


class TestWindowTruncation:
    def test_cascade_cut_at_window_start(self):
        """Retweets of pre-window posts become originals, not crashes."""
        tweets = [
            _tweet(10, 1, 5.0, "RT @user0: bridge closed downtown #alert",
                   retweet_of=3),  # parent id 3 not in window
            _tweet(11, 2, 6.0, "bridge closed downtown #alert"),
        ]
        report = ApolloPipeline("voting").run(tweets)
        problem = report.built.problem
        assert problem.n_sources == 2
        # Both land in one cluster (the RT prefix is stripped).
        assert problem.n_assertions == 1
        assert problem.dependent_claim_fraction() == 0.0

    def test_chained_retweets_partially_cut(self):
        tweets = [
            _tweet(1, 5, 2.0, "storm surge at the pier #weather"),
            _tweet(2, 6, 3.0, "RT @user5: storm surge at the pier #weather",
                   retweet_of=1),
            _tweet(3, 7, 4.0, "RT @user6: storm surge at the pier #weather",
                   retweet_of=2),
        ]
        report = ApolloPipeline("voting").run(tweets[1:])  # cut the root
        problem = report.built.problem
        assert problem.claims.n_claims == 2
        # The surviving retweet relation still yields one dependent claim.
        assert (problem.claims.values & problem.dependency.values).sum() == 1


class TestTextPathologies:
    def test_emoji_and_punctuation_only_noise(self):
        tweets = [
            _tweet(0, 1, 1.0, "!!! ??? ..."),
            _tweet(1, 2, 2.0, "bridge closed downtown #alert"),
        ]
        # Empty token sets open their own clusters rather than crashing.
        clusters = TokenClusterer().cluster(ingest_tweets(tweets).tweets)
        assert clusters.n_clusters == 2

    def test_identical_texts_from_many_users(self):
        tweets = [
            _tweet(k, 100 + k, float(k), "bridge closed downtown #alert")
            for k in range(20)
        ]
        report = ApolloPipeline("em-ext", seed=0).run(tweets)
        assert report.built.problem.n_assertions == 1
        assert report.built.problem.claims.n_claims == 20

    def test_same_user_repeats_claim(self):
        """A user tweeting the same statement twice yields one claim."""
        tweets = [
            _tweet(0, 1, 1.0, "bridge closed downtown #alert"),
            _tweet(1, 1, 2.0, "bridge closed downtown #alert"),
        ]
        report = ApolloPipeline("voting").run(tweets)
        assert report.built.problem.claims.n_claims == 1


class TestStreamValidation:
    def test_duplicate_ids_raise(self):
        tweets = [
            _tweet(0, 1, 1.0, "hello world"),
            _tweet(0, 2, 2.0, "hello again"),
        ]
        with pytest.raises(DataError):
            ApolloPipeline("voting").run(tweets)

    def test_empty_stream(self):
        report = ApolloPipeline("voting").run([])
        assert report.built.problem.n_assertions == 0
        assert report.ranked == []

    def test_self_follow_edges_dropped(self):
        tweets = [_tweet(0, 1, 1.0, "bridge closed downtown #alert")]
        report = ApolloPipeline("voting").run(tweets, follow_edges=[(1, 1)])
        assert report.built.graph.n_edges == 0

    def test_unknown_users_in_follow_edges_ignored(self):
        tweets = [_tweet(0, 1, 1.0, "bridge closed downtown #alert")]
        report = ApolloPipeline("voting").run(tweets, follow_edges=[(999, 1)])
        assert report.built.graph.n_edges == 0
